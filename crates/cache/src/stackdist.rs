//! Mattson stack-distance evaluation: one trace replay prices every
//! set-associative geometry of a sweep grid at once.
//!
//! For a true-LRU cache, whether an access hits depends only on its
//! *set-relative stack distance* — the number of distinct lines mapping to
//! the same set that were touched since the previous access to this line.
//! With bit-selection indexing the sets of a `2^k`-set cache are refinements
//! of the sets of a `2^j`-set cache for `j < k`, so one walk of a global
//! recency stack yields the distance for **every** power-of-two set count
//! simultaneously: each distinct line `v` above the target contributes to
//! set count `2^k` exactly when the low `k` bits of `v` match the target,
//! i.e. when `trailing_zeros(v ^ line) >= k`. Bucketing the walk by that
//! trailing-zero count and suffix-summing gives the whole distance vector.
//!
//! An access to a `(sets = 2^k, ways = W)` cache then hits iff it is not
//! the line's first touch and its distance at `k` is `< W` — which is how
//! a single pass fills a [`MattsonProfile`] (distance histograms per set
//! count) plus, for each requested geometry, exact per-fragment miss
//! counts, an eviction estimate and the three-C decomposition matching
//! [`ClassifyingCache`](crate::ClassifyingCache).

use crate::classify::ClassifyingCache;
use crate::geometry::CacheGeometry;
use crate::set_assoc::SetAssocCache;
use crate::stats::{CacheStats, MissBreakdown};
use crate::trace::LineAccessTrace;
use crate::LineCache;
use std::collections::HashMap;

/// Sentinel for "no slot" in the intrusive recency list.
const NIL: u32 = u32::MAX;

/// One geometry a trace evaluation should price.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeometryRequest {
    /// The set-associative geometry.
    pub geometry: CacheGeometry,
    /// Also derive the compulsory/capacity/conflict decomposition (needs
    /// the full-associativity distance counted up to the geometry's total
    /// line count, so it slightly deepens the stack walk).
    pub classify: bool,
}

/// Distance histograms of one node's access sequence: for each tracked set
/// count `2^k`, how many warm accesses had each set-relative stack
/// distance. Cold (first-touch) accesses are counted separately — they
/// miss in every geometry.
///
/// `hits(sets, ways)` reads the hit count of any `(sets, ways)` cache
/// whose axes the profile tracked, without touching the trace again.
#[derive(Debug, Clone)]
pub struct MattsonProfile {
    accesses: u64,
    cold: u64,
    /// `hist[k][d]` = warm accesses at set count `2^k` with distance `d`;
    /// the final bucket aggregates every distance `>= cap`. Empty for
    /// untracked `k`.
    hist: Vec<Vec<u64>>,
}

impl MattsonProfile {
    /// Total accesses in the node's sequence.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// First-touch (compulsory) accesses: misses in every geometry.
    pub fn compulsory(&self) -> u64 {
        self.cold
    }

    /// Whether `hits` can answer for this `(sets, ways)` point: the set
    /// count must be a tracked power of two and the associativity within
    /// the tracked distance range.
    pub fn supports(&self, sets: u32, ways: u32) -> bool {
        if !sets.is_power_of_two() || ways == 0 {
            return false;
        }
        let k = sets.trailing_zeros() as usize;
        match self.hist.get(k) {
            // The last bucket is the ">= cap" overflow, so exact counts
            // stop one short of the histogram length.
            Some(h) => (ways as usize) < h.len(),
            None => false,
        }
    }

    /// Hits of a true-LRU cache with `sets` sets and `ways` ways over the
    /// profiled sequence.
    ///
    /// # Panics
    ///
    /// Panics if the point is not [`supports`](Self::supports)ed.
    pub fn hits(&self, sets: u32, ways: u32) -> u64 {
        assert!(
            self.supports(sets, ways),
            "profile does not track {sets} sets x {ways} ways"
        );
        let k = sets.trailing_zeros() as usize;
        self.hist[k][..ways as usize].iter().sum()
    }

    /// Misses of the same cache: `accesses - hits`.
    pub fn misses(&self, sets: u32, ways: u32) -> u64 {
        self.accesses - self.hits(sets, ways)
    }
}

/// One geometry's replay-derived counters for one node.
#[derive(Debug, Clone)]
struct GeomCounts {
    misses: u64,
    breakdown: Option<MissBreakdown>,
    /// Misses of each fragment, in processing order (at most the trace's
    /// accesses-per-fragment, so `u8` is ample).
    frag_misses: Vec<u8>,
}

/// One node's evaluation: profile, distinct-line census and per-geometry
/// counters.
#[derive(Debug, Clone)]
struct NodeEvaluation {
    profile: MattsonProfile,
    /// Distinct lines in first-touch order (the cold-miss census).
    cold_lines: Vec<u32>,
    per_geom: Vec<GeomCounts>,
}

/// The result of replaying a [`LineAccessTrace`] against a grid of
/// geometries: per node and per requested geometry, the exact hit/miss
/// counters, per-fragment miss counts (for timing replay), eviction
/// estimates and optional three-C decomposition a direct simulation of
/// that geometry would produce.
#[derive(Debug, Clone)]
pub struct TraceEvaluation {
    requests: Vec<GeometryRequest>,
    nodes: Vec<NodeEvaluation>,
}

impl TraceEvaluation {
    /// The geometry grid this evaluation priced.
    pub fn requests(&self) -> &[GeometryRequest] {
        &self.requests
    }

    /// Number of nodes evaluated.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Index of a geometry in the request grid.
    pub fn index_of(&self, geometry: &CacheGeometry) -> Option<usize> {
        self.requests.iter().position(|r| r.geometry == *geometry)
    }

    /// One node's Mattson profile.
    pub fn profile(&self, node: usize) -> &MattsonProfile {
        &self.nodes[node].profile
    }

    /// Cache statistics of geometry `geom` on `node`, identical to a
    /// direct [`SetAssocCache`](crate::SetAssocCache) simulation of the
    /// node's sequence.
    pub fn stats(&self, node: usize, geom: usize) -> CacheStats {
        let n = &self.nodes[node];
        CacheStats::from_counts(n.profile.accesses, n.per_geom[geom].misses)
    }

    /// The three-C decomposition (only when the request asked to
    /// classify), identical to a direct
    /// [`ClassifyingCache`](crate::ClassifyingCache) simulation.
    pub fn breakdown(&self, node: usize, geom: usize) -> Option<MissBreakdown> {
        self.nodes[node].per_geom[geom].breakdown
    }

    /// Per-fragment miss counts of geometry `geom` on `node`, in
    /// processing order — what the timing replay feeds the engine model.
    pub fn fragment_misses(&self, node: usize, geom: usize) -> &[u8] {
        &self.nodes[node].per_geom[geom].frag_misses
    }

    /// First-touch (compulsory) miss count of `node` — the same for every
    /// geometry.
    pub fn compulsory(&self, node: usize) -> u64 {
        self.nodes[node].profile.cold
    }

    /// Lines of geometry `geom` resident on `node` after the whole
    /// sequence: per set, the smaller of the distinct lines mapping there
    /// and the associativity (LRU never un-fills a way).
    pub fn resident_lines(&self, node: usize, geom: usize) -> u64 {
        let g = &self.requests[geom].geometry;
        let mut per_set: HashMap<u32, u32> = HashMap::new();
        for &line in &self.nodes[node].cold_lines {
            *per_set.entry(g.set_of(line)).or_insert(0) += 1;
        }
        per_set.values().map(|&c| c.min(g.ways()) as u64).sum()
    }

    /// Evictions of geometry `geom` on `node`: every miss allocates, so
    /// fills minus still-resident lines.
    pub fn evictions(&self, node: usize, geom: usize) -> u64 {
        self.nodes[node].per_geom[geom].misses - self.resident_lines(node, geom)
    }
}

/// Replays `trace` through the stack-distance oracle, pricing every
/// geometry in `requests` for every node in one pass per node.
///
/// # Panics
///
/// Panics if two requests carry the same geometry (the grid must be
/// deduplicated so [`TraceEvaluation::index_of`] is unambiguous).
pub fn evaluate_trace(trace: &LineAccessTrace, requests: &[GeometryRequest]) -> TraceEvaluation {
    for (i, r) in requests.iter().enumerate() {
        assert!(
            !requests[..i].iter().any(|p| p.geometry == r.geometry),
            "duplicate geometry {} in request grid",
            r.geometry
        );
    }
    let grid = RequestGrid::new(requests);
    let nodes = (0..trace.node_count())
        .map(|n| evaluate_node(trace.node_lines(n), trace.accesses_per_fragment(), &grid))
        .collect();
    TraceEvaluation {
        requests: requests.to_vec(),
        nodes,
    }
}

/// Request-count threshold at which [`evaluate_trace_auto`] switches from
/// the direct per-geometry replay to the shared stack-distance walk.
///
/// The walk amortizes across geometries but pays a per-access scan bounded
/// by the deepest saturation cap (roughly `sets x ways` of the largest
/// geometry); a direct [`SetAssocCache`] probe touches one set. Measured
/// on the sweep bench's trace-replay lanes, the walk's near-fixed cost
/// equals roughly thirty direct per-geometry replays, so dozen-geometry
/// grids stay direct and 100-config dense grids take the walk.
pub const STACKDIST_MIN_REQUESTS: usize = 32;

/// Relative host cost of pricing `requests` geometries from one line
/// trace, in units of one direct trace pass — the same cost shape
/// [`evaluate_trace_auto`] switches its backend on, exported so the sweep
/// scheduler's cost model can dispatch trace evaluations
/// longest-estimated-first.
///
/// Below [`STACKDIST_MIN_REQUESTS`] the direct backend walks the trace
/// once per geometry; at or above it the Mattson walk pays roughly the
/// break-even number of passes once, then synthesizes each geometry from
/// the distance histograms for a small per-geometry increment.
pub fn evaluation_cost_weight(requests: usize) -> u64 {
    let requests = requests as u64;
    if requests >= STACKDIST_MIN_REQUESTS as u64 {
        STACKDIST_MIN_REQUESTS as u64 + requests / 8
    } else {
        requests.max(1)
    }
}

/// Replays `trace` with whichever backend is cheaper for the grid size:
/// the shared stack-distance walk ([`evaluate_trace`]) for
/// [`STACKDIST_MIN_REQUESTS`] or more geometries, the direct per-geometry
/// replay ([`evaluate_trace_direct`]) below that. Both produce identical
/// counters; only [`TraceEvaluation::profile`] differs (the direct
/// backend's profile tracks no distance histograms).
///
/// # Panics
///
/// Panics if two requests carry the same geometry.
pub fn evaluate_trace_auto(
    trace: &LineAccessTrace,
    requests: &[GeometryRequest],
) -> TraceEvaluation {
    evaluate_trace_auto_profiled(trace, requests, &sortmid_observe::NullHostSink)
}

/// [`evaluate_trace_auto`] with host profiling: the chosen backend runs
/// under a `mattson-walk` or `direct-replay` span, and the selection is
/// counted (`cache.backend.mattson` / `cache.backend.direct`) along with
/// the deciding grid size (`cache.eval_requests` histogram). With
/// [`NullHostSink`](sortmid_observe::NullHostSink) this monomorphizes to
/// exactly [`evaluate_trace_auto`].
///
/// # Panics
///
/// Panics if two requests carry the same geometry.
pub fn evaluate_trace_auto_profiled<S: sortmid_observe::HostSink>(
    trace: &LineAccessTrace,
    requests: &[GeometryRequest],
    sink: &S,
) -> TraceEvaluation {
    if S::ENABLED {
        sink.observe("cache.eval_requests", requests.len() as u64);
    }
    if requests.len() >= STACKDIST_MIN_REQUESTS {
        if S::ENABLED {
            sink.count("cache.backend.mattson", 1);
        }
        let _span = sink.span("mattson-walk");
        evaluate_trace(trace, requests)
    } else {
        if S::ENABLED {
            sink.count("cache.backend.direct", 1);
        }
        let _span = sink.span("direct-replay");
        evaluate_trace_direct(trace, requests)
    }
}

/// Replays `trace` by running each requested geometry through a direct
/// [`SetAssocCache`] / [`ClassifyingCache`] simulation — the baseline
/// backend the stack-distance walk must match, and the faster choice when
/// a plan group prices only a handful of geometries.
///
/// The returned evaluation answers every per-geometry query
/// ([`TraceEvaluation::stats`], [`breakdown`](TraceEvaluation::breakdown),
/// [`fragment_misses`](TraceEvaluation::fragment_misses),
/// [`evictions`](TraceEvaluation::evictions), ...) identically to
/// [`evaluate_trace`]; only the node [`MattsonProfile`]s differ — this
/// backend records accesses and compulsory counts but no distance
/// histograms, so [`MattsonProfile::supports`] answers `false` for every
/// point.
///
/// # Panics
///
/// Panics if two requests carry the same geometry.
pub fn evaluate_trace_direct(
    trace: &LineAccessTrace,
    requests: &[GeometryRequest],
) -> TraceEvaluation {
    for (i, r) in requests.iter().enumerate() {
        assert!(
            !requests[..i].iter().any(|p| p.geometry == r.geometry),
            "duplicate geometry {} in request grid",
            r.geometry
        );
    }
    let nodes = (0..trace.node_count())
        .map(|n| evaluate_node_direct(trace.node_lines(n), trace.accesses_per_fragment(), requests))
        .collect();
    TraceEvaluation {
        requests: requests.to_vec(),
        nodes,
    }
}

fn evaluate_node_direct(
    lines: &[u32],
    accesses_per_fragment: u32,
    requests: &[GeometryRequest],
) -> NodeEvaluation {
    // The cold census (first-touch order) feeds `compulsory` and
    // `resident_lines`, independent of any geometry.
    let cold_lines = cold_census(lines);
    let per_geom = requests
        .iter()
        .map(|r| {
            if r.classify {
                replay_geometry(lines, accesses_per_fragment, ClassifyingCache::new(r.geometry))
            } else {
                replay_geometry(lines, accesses_per_fragment, SetAssocCache::new(r.geometry))
            }
        })
        .collect();
    NodeEvaluation {
        profile: MattsonProfile {
            accesses: lines.len() as u64,
            cold: cold_lines.len() as u64,
            hist: Vec::new(),
        },
        cold_lines,
        per_geom,
    }
}

/// Distinct lines of a sequence in first-touch order, via a bitmap over
/// the line range (texture line indices are dense and small, so this beats
/// hashing each access).
fn cold_census(lines: &[u32]) -> Vec<u32> {
    let max = match lines.iter().max() {
        Some(&m) => m as usize,
        None => return Vec::new(),
    };
    if max >= 1 << 26 {
        // Pathologically sparse line values: hash instead of allocating a
        // multi-megabyte bitmap.
        let mut seen: HashMap<u32, ()> = HashMap::new();
        return lines
            .iter()
            .filter(|&&l| seen.insert(l, ()).is_none())
            .copied()
            .collect();
    }
    let mut seen = vec![0u64; max / 64 + 1];
    let mut cold_lines = Vec::new();
    for &line in lines {
        let (word, bit) = (line as usize / 64, line % 64);
        if seen[word] & (1 << bit) == 0 {
            seen[word] |= 1 << bit;
            cold_lines.push(line);
        }
    }
    cold_lines
}

/// Runs one concrete cache model over a node's sequence, collecting the
/// per-geometry counters (monomorphized per model — the probe loop is the
/// hot path of the direct backend).
fn replay_geometry<C: LineCache>(
    lines: &[u32],
    accesses_per_fragment: u32,
    mut cache: C,
) -> GeomCounts {
    let mut frag_misses = Vec::with_capacity(lines.len() / accesses_per_fragment.max(1) as usize);
    for chunk in lines.chunks_exact(accesses_per_fragment as usize) {
        let mut m = 0u8;
        for &line in chunk {
            if !cache.access_line(line) {
                m += 1;
            }
        }
        frag_misses.push(m);
    }
    GeomCounts {
        misses: cache.stats().misses(),
        breakdown: cache.breakdown(),
        frag_misses,
    }
}

/// The request grid preprocessed for the per-access loop.
struct RequestGrid {
    /// Per request: (k = log2 sets, ways, capacity threshold for the
    /// three-C oracle — 0 when the request does not classify).
    points: Vec<(usize, u32, u32)>,
    /// Per tracked k: distances are exact up to `cap[k]` and clamped
    /// there; 0 = untracked.
    cap: Vec<u32>,
    /// The tracked set-count exponents (those with `cap[k] > 0`),
    /// ascending — the walk iterates these, so small-`k` caps saturate
    /// first.
    tracked: Vec<usize>,
}

impl RequestGrid {
    fn new(requests: &[GeometryRequest]) -> Self {
        let k_max = requests
            .iter()
            .map(|r| r.geometry.sets().trailing_zeros() as usize)
            .max()
            .unwrap_or(0);
        let mut cap = vec![0u32; k_max + 1];
        let mut points = Vec::with_capacity(requests.len());
        for r in requests {
            let k = r.geometry.sets().trailing_zeros() as usize;
            let ways = r.geometry.ways();
            cap[k] = cap[k].max(ways);
            let classify_threshold = if r.classify { r.geometry.total_lines() } else { 0 };
            // The capacity oracle compares the full-associativity distance
            // (k = 0) against the geometry's total line count.
            if r.classify {
                cap[0] = cap[0].max(classify_threshold);
            }
            points.push((k, ways, classify_threshold));
        }
        let tracked = (0..cap.len()).filter(|&k| cap[k] > 0).collect();
        RequestGrid { points, cap, tracked }
    }
}

/// Intrusive move-to-front recency list over distinct lines: O(1) cold
/// insertion and unlink, walk-from-head for distance counting.
///
/// The line → slot map is a plain vector indexed by line value (texture
/// line indices are dense), so the per-access lookup is one load instead
/// of a hash.
struct RecencyStack {
    head: u32,
    next: Vec<u32>,
    prev: Vec<u32>,
    line_of: Vec<u32>,
    slot_of: Vec<u32>,
}

impl RecencyStack {
    fn new() -> Self {
        RecencyStack {
            head: NIL,
            next: Vec::new(),
            prev: Vec::new(),
            line_of: Vec::new(),
            slot_of: Vec::new(),
        }
    }

    /// The slot holding `line`, or [`NIL`] if the line is cold.
    fn slot_of(&self, line: u32) -> u32 {
        self.slot_of.get(line as usize).copied().unwrap_or(NIL)
    }

    fn push_front(&mut self, slot: u32) {
        self.prev[slot as usize] = NIL;
        self.next[slot as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = slot;
        }
        self.head = slot;
    }

    fn unlink(&mut self, slot: u32) {
        let (p, n) = (self.prev[slot as usize], self.next[slot as usize]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        }
    }

    fn insert_cold(&mut self, line: u32) {
        let slot = self.line_of.len() as u32;
        self.line_of.push(line);
        self.prev.push(NIL);
        self.next.push(NIL);
        if line as usize >= self.slot_of.len() {
            self.slot_of.resize(line as usize + 1, NIL);
        }
        self.slot_of[line as usize] = slot;
        self.push_front(slot);
    }
}

fn evaluate_node(lines: &[u32], accesses_per_fragment: u32, grid: &RequestGrid) -> NodeEvaluation {
    let k_top = grid.cap.len() - 1;
    let n_req = grid.points.len();
    let mut stack = RecencyStack::new();
    let mut cold_lines = Vec::new();
    let mut hist: Vec<Vec<u64>> = grid
        .cap
        .iter()
        .map(|&c| vec![0u64; if c > 0 { c as usize + 1 } else { 0 }])
        .collect();
    let mut cold = 0u64;
    let mut per_geom: Vec<GeomCounts> = grid
        .points
        .iter()
        .map(|&(_, _, threshold)| GeomCounts {
            misses: 0,
            breakdown: (threshold > 0).then(MissBreakdown::default),
            frag_misses: Vec::with_capacity(lines.len() / accesses_per_fragment as usize),
        })
        .collect();

    // Scratch reused across accesses: per tracked set count, the distinct
    // same-set lines seen above the target so far, clamped at `cap[k]`.
    let mut counts = vec![0u32; k_top + 1];
    let mut frag_misses = vec![0u8; n_req];
    let mut in_fragment = 0u32;

    for &line in lines {
        match stack.slot_of(line) {
            NIL => {
                // First touch: misses in every geometry, no walk needed.
                cold += 1;
                cold_lines.push(line);
                stack.insert_cold(line);
                for m in frag_misses.iter_mut() {
                    *m += 1;
                }
                for g in per_geom.iter_mut() {
                    g.misses += 1;
                    if let Some(b) = &mut g.breakdown {
                        b.compulsory += 1;
                    }
                }
            }
            slot if stack.head == slot => {
                // Most-recent line again (the dominant texture-locality
                // case): distance 0 at every set count — hits everywhere.
                for &k in &grid.tracked {
                    hist[k][0] += 1;
                }
            }
            slot => {
                // Walk the recency stack towards the target, counting per
                // tracked set count the distinct same-set lines passed (an
                // entry counts at `2^k` sets exactly when it agrees with
                // the target in the low `k` bits, i.e. when the xor's
                // trailing-zero count reaches `k`). Each counter clamps at
                // its cap — exact values beyond it answer no query — and
                // the walk stops the moment every counter has saturated:
                // the remaining entries cannot change any answer, and the
                // unlink below needs no position.
                for &k in &grid.tracked {
                    counts[k] = 0;
                }
                let mut unsaturated = grid.tracked.len();
                let mut cur = stack.head;
                'walk: while cur != slot {
                    let t = (stack.line_of[cur as usize] ^ line).trailing_zeros() as usize;
                    for &k in &grid.tracked {
                        if k > t {
                            break;
                        }
                        if counts[k] < grid.cap[k] {
                            counts[k] += 1;
                            if counts[k] == grid.cap[k] {
                                unsaturated -= 1;
                                if unsaturated == 0 {
                                    break 'walk;
                                }
                            }
                        }
                    }
                    cur = stack.next[cur as usize];
                }
                for &k in &grid.tracked {
                    let h = &mut hist[k];
                    let bucket = (counts[k] as usize).min(h.len() - 1);
                    h[bucket] += 1;
                }
                for (gi, &(k, ways, threshold)) in grid.points.iter().enumerate() {
                    if counts[k] >= ways {
                        frag_misses[gi] += 1;
                        let g = &mut per_geom[gi];
                        g.misses += 1;
                        if let Some(b) = &mut g.breakdown {
                            // Same oracle as ClassifyingCache: a warm miss
                            // is a capacity miss iff a fully-associative
                            // LRU of the same total size would also miss.
                            if counts[0] >= threshold {
                                b.capacity += 1;
                            } else {
                                b.conflict += 1;
                            }
                        }
                    }
                }
                stack.unlink(slot);
                stack.push_front(slot);
            }
        }

        in_fragment += 1;
        if in_fragment == accesses_per_fragment {
            in_fragment = 0;
            for (gi, m) in frag_misses.iter_mut().enumerate() {
                per_geom[gi].frag_misses.push(*m);
                *m = 0;
            }
        }
    }
    debug_assert_eq!(in_fragment, 0, "trace holds whole fragments");

    NodeEvaluation {
        profile: MattsonProfile {
            accesses: lines.len() as u64,
            cold,
            hist,
        },
        cold_lines,
        per_geom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_assoc::SetAssocCache;
    use crate::LineCache;

    fn trace_of(lines: Vec<u32>) -> LineAccessTrace {
        LineAccessTrace::from_nodes(vec![lines], 1)
    }

    fn geom(size: u32, ways: u32) -> CacheGeometry {
        CacheGeometry::new(size, ways, 64).unwrap()
    }

    fn request(size: u32, ways: u32) -> GeometryRequest {
        GeometryRequest {
            geometry: geom(size, ways),
            classify: false,
        }
    }

    /// Deterministic pseudo-random line sequence.
    fn lcg_lines(n: usize, span: u32, seed: u32) -> Vec<u32> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(1103515245).wrapping_add(12345);
                (x >> 16) % span
            })
            .collect()
    }

    #[test]
    fn matches_direct_simulation_on_random_sequences() {
        let lines = lcg_lines(4000, 200, 7);
        let grid: Vec<GeometryRequest> = [(512, 1), (512, 2), (1024, 4), (4096, 8), (16384, 4)]
            .iter()
            .map(|&(s, w)| request(s, w))
            .collect();
        let eval = evaluate_trace(&trace_of(lines.clone()), &grid);
        for (gi, r) in grid.iter().enumerate() {
            let mut direct = SetAssocCache::new(r.geometry);
            for &l in &lines {
                direct.access_line(l);
            }
            assert_eq!(
                eval.stats(0, gi).misses(),
                direct.stats().misses(),
                "{}",
                r.geometry
            );
            assert_eq!(
                eval.resident_lines(0, gi),
                direct.resident_lines() as u64,
                "{}",
                r.geometry
            );
        }
    }

    #[test]
    fn profile_answers_the_registered_grid() {
        let lines = lcg_lines(1000, 64, 3);
        let grid = [request(512, 2), request(1024, 2)];
        let eval = evaluate_trace(&trace_of(lines), &grid);
        let p = eval.profile(0);
        assert!(p.supports(8, 2) && p.supports(8, 1));
        assert!(!p.supports(8, 4), "4 ways beyond the tracked cap");
        assert!(!p.supports(3, 1), "non-power-of-two sets");
        assert_eq!(p.hits(8, 2) + p.misses(8, 2), p.accesses());
        // 1024B/2-way/64B has 8 sets; the profile must agree with its grid
        // entry.
        assert_eq!(p.misses(8, 2), eval.stats(0, 1).misses());
        // 512B/2-way/64B has 4 sets.
        assert_eq!(p.misses(4, 2), eval.stats(0, 0).misses());
    }

    #[test]
    fn per_fragment_misses_sum_to_totals() {
        let lines = lcg_lines(4096, 100, 11);
        let trace = LineAccessTrace::from_nodes(vec![lines], 8);
        let grid = [request(512, 2), request(2048, 4)];
        let eval = evaluate_trace(&trace, &grid);
        for gi in 0..grid.len() {
            let per_frag: u64 = eval.fragment_misses(0, gi).iter().map(|&m| m as u64).sum();
            assert_eq!(per_frag, eval.stats(0, gi).misses());
            assert_eq!(eval.fragment_misses(0, gi).len(), 512);
        }
    }

    #[test]
    fn saturation_cutoff_does_not_change_answers() {
        // A sequence engineered to make far reuses: sweep a big footprint,
        // then re-touch early lines.
        let mut lines = (0..2000u32).collect::<Vec<_>>();
        lines.extend(0..2000u32);
        let grid = [request(512, 1), request(512, 8)];
        let eval = evaluate_trace(&trace_of(lines.clone()), &grid);
        for (gi, r) in grid.iter().enumerate() {
            let mut direct = SetAssocCache::new(r.geometry);
            for &l in &lines {
                direct.access_line(l);
            }
            assert_eq!(eval.stats(0, gi).misses(), direct.stats().misses());
        }
    }

    #[test]
    #[should_panic(expected = "duplicate geometry")]
    fn duplicate_requests_panic() {
        evaluate_trace(&trace_of(vec![1]), &[request(512, 2), request(512, 2)]);
    }

    #[test]
    fn direct_backend_matches_stackdist_backend() {
        let lines = lcg_lines(4096, 180, 29);
        let trace = LineAccessTrace::from_nodes(vec![lines], 8);
        let mut grid: Vec<GeometryRequest> = [(512, 1), (1024, 4), (4096, 2), (16384, 8)]
            .iter()
            .map(|&(s, w)| request(s, w))
            .collect();
        grid[1].classify = true;
        let walk = evaluate_trace(&trace, &grid);
        let direct = evaluate_trace_direct(&trace, &grid);
        assert_eq!(walk.compulsory(0), direct.compulsory(0));
        for (gi, req) in grid.iter().enumerate() {
            assert_eq!(walk.stats(0, gi), direct.stats(0, gi), "{}", req.geometry);
            assert_eq!(walk.breakdown(0, gi), direct.breakdown(0, gi));
            assert_eq!(walk.fragment_misses(0, gi), direct.fragment_misses(0, gi));
            assert_eq!(walk.evictions(0, gi), direct.evictions(0, gi));
        }
        assert!(walk.profile(0).supports(8, 1));
        assert!(
            !direct.profile(0).supports(8, 1),
            "the direct backend tracks no distance histograms"
        );
    }

    #[test]
    fn auto_backend_picks_by_request_count() {
        let trace = trace_of(lcg_lines(256, 40, 5));
        let few = [request(512, 1), request(1024, 2)];
        assert!(
            !evaluate_trace_auto(&trace, &few).profile(0).supports(8, 1),
            "small grids take the direct backend"
        );
        let many: Vec<GeometryRequest> = (0..STACKDIST_MIN_REQUESTS as u32)
            .map(|i| request(512 << (i % 8), 1 << (i / 8)))
            .collect();
        assert!(
            evaluate_trace_auto(&trace, &many).profile(0).supports(8, 1),
            "dense grids take the stack-distance walk"
        );
    }

    #[test]
    fn evaluation_cost_weight_tracks_the_backend_switch() {
        assert_eq!(evaluation_cost_weight(0), 1, "a no-op eval still costs a task");
        // The direct backend scales linearly with the request count...
        for n in 1..STACKDIST_MIN_REQUESTS {
            assert_eq!(evaluation_cost_weight(n), n as u64);
        }
        // ...and the walk amortizes: doubling a dense grid far less than
        // doubles the weight, while the weight stays monotone throughout.
        let dense = evaluation_cost_weight(STACKDIST_MIN_REQUESTS * 4);
        let denser = evaluation_cost_weight(STACKDIST_MIN_REQUESTS * 8);
        assert!(denser > dense && denser < dense * 2, "{dense} -> {denser}");
        let mut prev = 0;
        for n in 0..512 {
            let w = evaluation_cost_weight(n);
            assert!(w >= prev, "weight must be monotone at {n}");
            prev = w;
        }
    }
}
