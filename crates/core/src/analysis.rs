//! Analytical models of primitive overlap and setup overhead.
//!
//! The paper leans on Molnar's sorting classification and on Chen et
//! al.'s *Models of the impact of overlap in bucket rendering* (its
//! reference \[2\], the source of the 25-pixels-per-triangle setup figure).
//! This module implements the standard overlap model so the simulator's
//! measured routing can be sanity-checked against theory, and so users can
//! predict setup overhead without running a simulation.

use crate::distribution::Distribution;
use sortmid_raster::FragmentStream;

/// Chen et al.'s expected overlap factor: a triangle whose bounding box is
/// `bw × bh` pixels, placed uniformly at random on a grid of `tw × th`
/// tiles, lands in
/// `(bw/tw + 1) · (bh/th + 1)` tiles on average.
///
/// # Panics
///
/// Panics if a tile dimension is zero.
///
/// # Examples
///
/// ```
/// use sortmid::analysis::expected_overlap;
///
/// // A point triangle touches exactly one tile...
/// assert!((expected_overlap(0.0, 0.0, 16, 16) - 1.0).abs() < 1e-12);
/// // ...a tile-sized one straddles four on average.
/// assert!((expected_overlap(16.0, 16.0, 16, 16) - 4.0).abs() < 1e-12);
/// ```
pub fn expected_overlap(bbox_w: f64, bbox_h: f64, tile_w: u32, tile_h: u32) -> f64 {
    assert!(tile_w > 0 && tile_h > 0, "tile dimensions must be positive");
    (bbox_w / tile_w as f64 + 1.0) * (bbox_h / tile_h as f64 + 1.0)
}

/// Expected overlap of a stream under a distribution, from the analytic
/// model: averages [`expected_overlap`] over the live triangles' bounding
/// boxes, capping at the processor count (a triangle cannot be routed to
/// more nodes than exist).
pub fn model_overlap(stream: &FragmentStream, dist: &Distribution, procs: u32) -> f64 {
    let (tile_w, tile_h) = match dist {
        Distribution::Block { width } | Distribution::BlockRaster { width, .. } => (*width, *width),
        Distribution::Tile { width, height } => (*width, *height),
        // An SLI group spans the full screen width: horizontal overlap 1.
        Distribution::Sli { lines } => (u32::MAX, *lines),
        Distribution::DynamicSli { boundaries } => {
            // Use the mean group height.
            let height = *boundaries.last().expect("non-empty") as f64;
            let mean = (height / boundaries.len() as f64).max(1.0) as u32;
            (u32::MAX, mean)
        }
    };
    let mut total = 0.0;
    let mut count = 0u64;
    for tri in stream.triangles() {
        if tri.is_culled() {
            continue;
        }
        let o = if tile_w == u32::MAX {
            expected_overlap(0.0, tri.bbox.height() as f64, 1, tile_h)
        } else {
            expected_overlap(tri.bbox.width() as f64, tri.bbox.height() as f64, tile_w, tile_h)
        };
        total += o.min(procs as f64);
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// *Measured* mean overlap: the average number of nodes each live triangle
/// is actually routed to under `dist` (exact, from the overlap masks).
pub fn measured_overlap(stream: &FragmentStream, dist: &Distribution, procs: u32) -> f64 {
    let mut total = 0u64;
    let mut count = 0u64;
    for tri in stream.triangles() {
        if tri.is_culled() {
            continue;
        }
        total += dist.overlap_mask(&tri.bbox, procs).count_ones() as u64;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

/// Fraction of total engine work that is pure setup floor (cycles spent
/// below the 25-pixel threshold). High values mean the machine is
/// triangle-bound, the failure mode of tiny tiles in Figure 5's speedup
/// panels.
pub fn setup_overhead_fraction(
    stream: &FragmentStream,
    dist: &Distribution,
    procs: u32,
    setup_cycles: u64,
) -> f64 {
    let work = crate::work::engine_work(stream, dist, procs, setup_cycles);
    let pixels = crate::work::pixel_work(stream, dist, procs);
    let total_work: u64 = work.iter().sum();
    let total_pixels: u64 = pixels.iter().sum();
    if total_work == 0 {
        0.0
    } else {
        (total_work - total_pixels) as f64 / total_work as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortmid_scene::{Benchmark, SceneBuilder};

    fn stream() -> FragmentStream {
        SceneBuilder::benchmark(Benchmark::Massive11255)
            .scale(0.15)
            .build()
            .rasterize()
    }

    #[test]
    fn expected_overlap_grows_with_bbox_and_shrinks_with_tiles() {
        let small = expected_overlap(8.0, 8.0, 32, 32);
        let big = expected_overlap(64.0, 64.0, 32, 32);
        assert!(big > small);
        let fine = expected_overlap(32.0, 32.0, 8, 8);
        let coarse = expected_overlap(32.0, 32.0, 64, 64);
        assert!(fine > coarse);
    }

    #[test]
    fn model_tracks_measured_overlap() {
        let s = stream();
        for dist in [Distribution::block(16), Distribution::block(64), Distribution::sli(4)] {
            let model = model_overlap(&s, &dist, 64);
            let measured = measured_overlap(&s, &dist, 64);
            assert!(measured >= 1.0);
            // The analytic model is exact in expectation for uniformly
            // placed bboxes; generated scenes cluster, so allow 40 %.
            let err = (model - measured).abs() / measured;
            assert!(
                err < 0.4,
                "{dist}: model {model:.2} vs measured {measured:.2} (err {err:.2})"
            );
        }
    }

    #[test]
    fn measured_overlap_monotone_in_fineness() {
        let s = stream();
        let coarse = measured_overlap(&s, &Distribution::block(64), 64);
        let fine = measured_overlap(&s, &Distribution::block(8), 64);
        assert!(fine > coarse);
        let sli_fine = measured_overlap(&s, &Distribution::sli(1), 64);
        let sli_coarse = measured_overlap(&s, &Distribution::sli(16), 64);
        assert!(sli_fine > sli_coarse);
    }

    #[test]
    fn setup_overhead_explodes_for_tiny_tiles() {
        let s = stream();
        let tiny = setup_overhead_fraction(&s, &Distribution::block(2), 64, 25);
        let good = setup_overhead_fraction(&s, &Distribution::block(16), 64, 25);
        assert!(tiny > good, "tiny {tiny:.3} vs good {good:.3}");
        assert!((0.0..=1.0).contains(&tiny));
        // With a zero setup floor there is no overhead at all.
        assert_eq!(setup_overhead_fraction(&s, &Distribution::block(2), 64, 0), 0.0);
    }

    #[test]
    fn sli_model_ignores_horizontal_extent() {
        let s = stream();
        // SLI overlap depends only on bbox height; the model must not
        // multiply in a horizontal term.
        let m = model_overlap(&s, &Distribution::sli(1000), 64);
        assert!(m < 1.5, "huge groups -> overlap near 1, got {m}");
    }
}
