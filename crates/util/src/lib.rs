//! Foundation utilities shared by every `sortmid` crate.
//!
//! This crate deliberately has **no** external dependencies so that the whole
//! simulator is reproducible bit-for-bit across platforms:
//!
//! * [`rng`] — a small, seedable PCG32 pseudo-random generator used by the
//!   scene generator. Identical seeds produce identical scenes everywhere.
//! * [`stats`] — streaming summary statistics and histogram helpers used by
//!   the measurement code.
//! * [`table`] — fixed-width ASCII table and CSV writers used by the
//!   experiment harness to print the paper's tables and figure series.
//! * [`ppm`] — a minimal binary PPM image writer used to regenerate the
//!   benchmark images of Figure 9.
//!
//! # Examples
//!
//! ```
//! use sortmid_util::rng::Pcg32;
//!
//! let mut a = Pcg32::seed_from_u64(42);
//! let mut b = Pcg32::seed_from_u64(42);
//! assert_eq!(a.next_u32(), b.next_u32());
//! ```

pub mod chart;
pub mod ppm;
pub mod rng;
pub mod stats;
pub mod table;
