//! Property tests proving the stack-distance replay pipeline equivalent to
//! direct simulation, on the in-repo `sortmid-devharness` runner.
//!
//! The tentpole claim of the one-pass cache evaluation is *exact*
//! equivalence, not approximation: replaying one captured
//! [`LineAccessTrace`](sortmid_cache::LineAccessTrace) through the Mattson
//! stack must reproduce — for every `(size, associativity)` point of a
//! random grid — the hit/miss/eviction counters a direct
//! [`SetAssocCache`](sortmid_cache::SetAssocCache) simulation produces,
//! and the sweep's replay path must emit byte-identical [`RunReport`]s.
//! These properties randomize the distribution, machine size and cache
//! grid so the equivalence is exercised far beyond the reference sweep.

use sortmid::{
    capture_line_trace, run_sweep_with_options, CacheKind, Distribution, MachineConfig,
    RoutingPlan, RunReport, SweepOptions,
};
use sortmid_cache::{
    evaluate_trace, evaluate_trace_direct, CacheGeometry, ClassifyingCache, GeometryRequest,
    LineCache, SetAssocCache,
};
use sortmid_devharness::prop::{check, Config, Gen};
use sortmid_devharness::{prop_assert, prop_assert_eq};
use sortmid_raster::FragmentStream;
use sortmid_scene::{Benchmark, SceneBuilder};
use std::sync::OnceLock;

/// One small shared stream (building scenes per property case is too slow).
fn stream() -> &'static FragmentStream {
    static STREAM: OnceLock<FragmentStream> = OnceLock::new();
    STREAM.get_or_init(|| {
        SceneBuilder::benchmark(Benchmark::Quake)
            .scale(0.08)
            .build()
            .rasterize()
    })
}

/// Block with width 1..200 or SLI with 1..64 lines.
fn arb_distribution(g: &mut Gen) -> Distribution {
    match g.choice(2) {
        0 => Distribution::block(g.u32_in(1..200)),
        _ => Distribution::sli(g.u32_in(1..64)),
    }
}

/// A random grid of 4..=7 distinct cache geometries (random power-of-two
/// sizes and associativities, 64-byte lines) with random classify flags —
/// at least four so the sweep's replay path stays engaged
/// (`REPLAY_MIN_GROUP`).
fn arb_cache_grid(g: &mut Gen) -> Vec<GeometryRequest> {
    let count = g.usize_in(4..8);
    let mut grid: Vec<GeometryRequest> = Vec::new();
    while grid.len() < count {
        let size = 512u32 << g.u32_in(0..10);
        let max_log_ways = (size / 64).trailing_zeros().min(4);
        let ways = 1u32 << g.u32_in(0..max_log_ways + 1);
        let geometry = CacheGeometry::new(size, ways, 64).expect("power-of-two grid point");
        if grid.iter().all(|r| r.geometry != geometry) {
            grid.push(GeometryRequest {
                geometry,
                classify: g.bool(),
            });
        }
    }
    grid
}

fn config_for(dist: &Distribution, procs: u32, cache: CacheKind, buffer: usize) -> MachineConfig {
    MachineConfig::builder()
        .processors(procs)
        .distribution(dist.clone())
        .cache(cache)
        .bus_ratio(1.0)
        .triangle_buffer(buffer)
        .build()
        .expect("valid config")
}

/// The tentpole equivalence: for random scenes-distribution-grid triples,
/// one trace replay reproduces the direct simulator's per-node hit, miss
/// and eviction counts at every `(size, associativity)` of the grid — and
/// the full sweep over those configs emits byte-identical reports down
/// both pipelines.
#[test]
fn prop_stackdist_replay_equals_direct() {
    check(
        "prop_stackdist_replay_equals_direct",
        &Config::with_cases(16),
        |g| (arb_distribution(g), g.u32_in(1..32), arb_cache_grid(g)),
        |(dist, procs, grid)| {
            let s = stream();

            // Counter equivalence: evaluate the captured trace once and
            // check every geometry against a fresh direct cache fed the
            // same per-node sequence.
            let plan = RoutingPlan::build(s, dist, *procs);
            let trace = capture_line_trace(s, &plan);
            let eval = evaluate_trace(&trace, grid);
            for node in 0..trace.node_count() {
                let lines = trace.node_lines(node);
                for (gi, req) in grid.iter().enumerate() {
                    let mut direct = SetAssocCache::new(req.geometry);
                    for &line in lines {
                        direct.access_line(line);
                    }
                    let stats = eval.stats(node, gi);
                    prop_assert_eq!(
                        &stats,
                        direct.stats(),
                        "node {node} {}: replayed stats diverge",
                        req.geometry
                    );
                    let resident = direct.resident_lines() as u64;
                    prop_assert_eq!(
                        eval.evictions(node, gi),
                        direct.stats().misses() - resident,
                        "node {node} {}: replayed evictions diverge",
                        req.geometry
                    );
                    if req.classify {
                        let mut classed = ClassifyingCache::new(req.geometry);
                        for &line in lines {
                            classed.access_line(line);
                        }
                        prop_assert_eq!(
                            eval.breakdown(node, gi).expect("classified request"),
                            classed.breakdown(),
                            "node {node} {}: three-C decomposition diverges",
                            req.geometry
                        );
                    }
                }
            }

            // Report equivalence: the same grid as sweep configs, replay
            // path against the direct path, byte-identical reports.
            let configs: Vec<MachineConfig> = grid
                .iter()
                .map(|r| {
                    let kind = if r.classify {
                        CacheKind::Classifying(r.geometry)
                    } else {
                        CacheKind::SetAssoc(r.geometry)
                    };
                    config_for(dist, *procs, kind, 100)
                })
                .collect();
            let replayed = run_sweep_with_options(
                s,
                &configs,
                SweepOptions {
                    threads: 1,
                    replay: true,
                    batch: true,
                    static_schedule: false,
                },
            );
            let direct = run_sweep_with_options(
                s,
                &configs,
                SweepOptions {
                    threads: 1,
                    replay: false,
                    batch: false,
                    static_schedule: false,
                },
            );
            prop_assert_eq!(replayed.len(), direct.len());
            for (r, d) in replayed.iter().zip(&direct) {
                prop_assert_eq!(r, d, "replayed report diverges for {}", r.summary());
            }
            Ok(())
        },
    );
}

/// Mattson inclusion and compulsory-miss equivalence: at fixed
/// associativity, growing the cache (more sets) never loses hits — and the
/// profile's compulsory count equals the direct classifying simulator's
/// per-node compulsory counter (both backends agree on it).
#[test]
fn prop_mattson_profile_monotone_and_compulsory_exact() {
    const WAYS: [u32; 3] = [1, 2, 4];
    check(
        "prop_mattson_profile_monotone_and_compulsory_exact",
        &Config::with_cases(16),
        |g| (arb_distribution(g), g.u32_in(1..24)),
        |(dist, procs)| {
            let s = stream();
            // Every power-of-two size from 512 B to 256 KB at each fixed
            // associativity: a capacity ladder per ways value.
            let grid: Vec<GeometryRequest> = (0..10)
                .flat_map(|log| {
                    WAYS.iter().map(move |&ways| GeometryRequest {
                        geometry: CacheGeometry::new(512 << log, ways, 64)
                            .expect("power-of-two ladder"),
                        classify: false,
                    })
                })
                .collect();
            let plan = RoutingPlan::build(s, dist, *procs);
            let trace = capture_line_trace(s, &plan);
            let eval = evaluate_trace(&trace, &grid);
            let fallback = evaluate_trace_direct(&trace, &grid);
            for node in 0..trace.node_count() {
                let profile = eval.profile(node);
                for &ways in &WAYS {
                    let mut prev = 0u64;
                    for log in 0..10 {
                        let sets = (512u32 << log) / 64 / ways;
                        prop_assert!(
                            profile.supports(sets, ways),
                            "node {node}: profile must track {sets} sets x {ways} ways"
                        );
                        let hits = profile.hits(sets, ways);
                        prop_assert!(
                            hits >= prev,
                            "node {node}: hits fell from {prev} to {hits} growing to \
                             {sets} sets at {ways} ways"
                        );
                        prop_assert_eq!(
                            hits + profile.misses(sets, ways),
                            profile.accesses(),
                            "node {node}: hits + misses must cover every access"
                        );
                        prev = hits;
                    }
                }

                // Compulsory misses are geometry-independent first
                // touches: the profile, the direct replay backend and a
                // direct classifying simulation must all agree.
                let mut direct = ClassifyingCache::new(CacheGeometry::paper_l1());
                for &line in trace.node_lines(node) {
                    direct.access_line(line);
                }
                prop_assert_eq!(
                    eval.compulsory(node),
                    direct.breakdown().compulsory,
                    "node {node}: walk compulsory diverges from direct simulation"
                );
                prop_assert_eq!(
                    fallback.compulsory(node),
                    eval.compulsory(node),
                    "node {node}: the two replay backends disagree on compulsory"
                );
            }
            Ok(())
        },
    );
}

/// The sweep's `--no-replay` escape hatch and its default path agree on a
/// mixed grid that includes replay-ineligible configs (perfect caches),
/// so path selection can never change results.
#[test]
fn prop_mixed_grid_sweep_is_path_independent() {
    check(
        "prop_mixed_grid_sweep_is_path_independent",
        &Config::with_cases(8),
        |g| {
            (
                arb_distribution(g),
                g.u32_in(1..24),
                g.pick(&[1usize, 100, 10_000]),
            )
        },
        |(dist, procs, buffer)| {
            let s = stream();
            let geometries = [
                CacheGeometry::new(4096, 2, 64).expect("valid"),
                CacheGeometry::new(16_384, 4, 64).expect("valid"),
                CacheGeometry::paper_l1(),
            ];
            let mut configs = vec![config_for(dist, *procs, CacheKind::Perfect, *buffer)];
            configs.push(config_for(dist, *procs, CacheKind::PaperL1, *buffer));
            for g in geometries {
                configs.push(config_for(dist, *procs, CacheKind::SetAssoc(g), *buffer));
                configs.push(config_for(dist, *procs, CacheKind::Classifying(g), *buffer));
            }
            let run = |replay: bool, batch: bool| -> Vec<RunReport> {
                run_sweep_with_options(
                    s,
                    &configs,
                    SweepOptions { threads: 2, replay, batch, static_schedule: false },
                )
            };
            let replayed = run(true, true);
            let direct = run(false, false);
            for (r, d) in replayed.iter().zip(&direct) {
                prop_assert_eq!(r, d, "paths diverge for {}", r.summary());
            }
            Ok(())
        },
    );
}
