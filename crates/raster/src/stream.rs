//! Rasterizing a scene into a replayable fragment stream.

use crate::fragment::{Fragment, TriangleRecord};
use crate::setup::TriangleSetup;
use sortmid_geom::{Rect, Triangle};
use sortmid_texture::{TextureId, TextureRegistry, TrilinearSampler};

/// Error from [`FragmentStream::from_parts`]: the triangle records do not
/// tile the fragment array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPartsError;

impl std::fmt::Display for StreamPartsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "triangle records do not tile the fragment array")
    }
}

impl std::error::Error for StreamPartsError {}

/// The rasterized form of a scene: triangles in stream order, each with its
/// covered fragments and their precomputed trilinear footprints.
///
/// # Examples
///
/// See [`rasterize`].
#[derive(Debug, Clone)]
pub struct FragmentStream {
    screen: Rect,
    triangles: Vec<TriangleRecord>,
    fragments: Vec<Fragment>,
}

impl FragmentStream {
    /// Reassembles a stream from its parts (deserialization); validates
    /// that the triangle records tile the fragment array contiguously and
    /// in order.
    ///
    /// # Errors
    ///
    /// Returns `Err(())`-like [`StreamPartsError`] when the records do not
    /// partition `fragments` exactly.
    pub fn from_parts(
        screen: Rect,
        triangles: Vec<TriangleRecord>,
        fragments: Vec<Fragment>,
    ) -> Result<Self, StreamPartsError> {
        let mut cursor = 0u32;
        for t in &triangles {
            if t.frag_start != cursor || t.frag_end < t.frag_start {
                return Err(StreamPartsError);
            }
            cursor = t.frag_end;
        }
        if cursor as usize != fragments.len() {
            return Err(StreamPartsError);
        }
        Ok(FragmentStream {
            screen,
            triangles,
            fragments,
        })
    }

    /// The screen the stream was rasterized against.
    #[inline]
    pub fn screen(&self) -> Rect {
        self.screen
    }

    /// All triangle records, in the geometry stage's stream order.
    #[inline]
    pub fn triangles(&self) -> &[TriangleRecord] {
        &self.triangles
    }

    /// All fragments, grouped by triangle in stream order.
    #[inline]
    pub fn fragments(&self) -> &[Fragment] {
        &self.fragments
    }

    /// The fragments of one triangle.
    #[inline]
    pub fn fragments_of(&self, tri: &TriangleRecord) -> &[Fragment] {
        &self.fragments[tri.frag_start as usize..tri.frag_end as usize]
    }

    /// Total fragments (the paper's "pixels rendered").
    pub fn fragment_count(&self) -> u64 {
        self.fragments.len() as u64
    }

    /// Number of triangles (including culled ones).
    pub fn triangle_count(&self) -> usize {
        self.triangles.len()
    }

    /// Average depth complexity: fragments per screen pixel.
    pub fn depth_complexity(&self) -> f64 {
        let area = self.screen.area();
        if area == 0 {
            0.0
        } else {
            self.fragments.len() as f64 / area as f64
        }
    }
}

/// Rasterizes a triangle stream against `screen`, resolving every
/// fragment's 8-texel trilinear footprint through `registry`.
///
/// Culled triangles (degenerate or fully off screen) keep a record with an
/// empty bounding box so stream order is preserved, but produce no
/// fragments and will not be routed to any node.
///
/// # Panics
///
/// Panics if a triangle references a texture id not present in `registry`,
/// or if the screen exceeds 65 536 pixels on a side (fragment coordinates
/// are stored as `u16`).
///
/// # Examples
///
/// ```
/// use sortmid_geom::{Rect, Triangle, Vertex};
/// use sortmid_texture::{TextureDesc, TextureRegistry};
/// use sortmid_raster::rasterize;
///
/// # fn main() -> Result<(), sortmid_texture::TextureError> {
/// let mut reg = TextureRegistry::new();
/// let tex = reg.register(TextureDesc::new(32, 32)?)?;
/// let tri = Triangle::new(
///     tex.0,
///     [
///         Vertex::new(0.0, 0.0, 0.0, 0.0),
///         Vertex::new(8.0, 0.0, 8.0, 0.0),
///         Vertex::new(0.0, 8.0, 0.0, 8.0),
///     ],
/// );
/// let stream = rasterize(&[tri], &reg, Rect::of_size(32, 32));
/// assert_eq!(stream.triangle_count(), 1);
/// assert_eq!(stream.fragment_count(), 36);
/// # Ok(())
/// # }
/// ```
pub fn rasterize(triangles: &[Triangle], registry: &TextureRegistry, screen: Rect) -> FragmentStream {
    assert!(
        screen.width() <= u16::MAX as u32 + 1 && screen.height() <= u16::MAX as u32 + 1,
        "screen too large for u16 fragment coordinates"
    );
    let sampler = TrilinearSampler::new(registry);
    let mut records = Vec::with_capacity(triangles.len());
    let mut fragments: Vec<Fragment> = Vec::new();
    for tri in triangles {
        let texture = TextureId(tri.texture());
        let frag_start = fragments.len() as u32;
        match TriangleSetup::new(tri, screen) {
            Some(setup) => {
                let lod = setup.lod();
                setup.scan(|x, y, u, v| {
                    fragments.push(Fragment {
                        x: x as u16,
                        y: y as u16,
                        texels: sampler.footprint(texture, u, v, lod),
                    });
                });
                records.push(TriangleRecord {
                    texture,
                    bbox: setup.bbox(),
                    frag_start,
                    frag_end: fragments.len() as u32,
                });
            }
            None => {
                records.push(TriangleRecord {
                    texture,
                    bbox: Rect::EMPTY,
                    frag_start,
                    frag_end: frag_start,
                });
            }
        }
    }
    FragmentStream {
        screen,
        triangles: records,
        fragments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sortmid_devharness::prop::{check, Config};
    use sortmid_devharness::prop_assert_eq;
    use sortmid_geom::Vertex;
    use sortmid_texture::TextureDesc;

    fn registry() -> TextureRegistry {
        let mut reg = TextureRegistry::new();
        reg.register(TextureDesc::new(64, 64).unwrap()).unwrap();
        reg.register(TextureDesc::new(32, 32).unwrap()).unwrap();
        reg
    }

    fn tri(tex: u32, coords: [(f32, f32); 3]) -> Triangle {
        Triangle::new(
            tex,
            [
                Vertex::new(coords[0].0, coords[0].1, coords[0].0, coords[0].1),
                Vertex::new(coords[1].0, coords[1].1, coords[1].0, coords[1].1),
                Vertex::new(coords[2].0, coords[2].1, coords[2].0, coords[2].1),
            ],
        )
    }

    #[test]
    fn stream_preserves_order_and_ranges() {
        let reg = registry();
        let tris = vec![
            tri(0, [(0.0, 0.0), (8.0, 0.0), (0.0, 8.0)]),
            tri(1, [(10.0, 10.0), (14.0, 10.0), (10.0, 14.0)]),
        ];
        let s = rasterize(&tris, &reg, Rect::of_size(64, 64));
        assert_eq!(s.triangle_count(), 2);
        let r0 = s.triangles()[0];
        let r1 = s.triangles()[1];
        assert_eq!(r0.frag_start, 0);
        assert_eq!(r0.frag_end, r1.frag_start);
        assert_eq!(r1.frag_end as u64, s.fragment_count());
        assert_eq!(r0.texture, TextureId(0));
        assert_eq!(r1.texture, TextureId(1));
        assert_eq!(s.fragments_of(&r0).len(), r0.fragment_count() as usize);
    }

    #[test]
    fn culled_triangles_keep_their_slot() {
        let reg = registry();
        let tris = vec![
            tri(0, [(100.0, 100.0), (120.0, 100.0), (100.0, 120.0)]), // off screen
            tri(0, [(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)]),
        ];
        let s = rasterize(&tris, &reg, Rect::of_size(64, 64));
        assert_eq!(s.triangle_count(), 2);
        assert!(s.triangles()[0].is_culled());
        assert_eq!(s.triangles()[0].fragment_count(), 0);
        assert!(!s.triangles()[1].is_culled());
    }

    #[test]
    fn depth_complexity_counts_overdraw() {
        let reg = registry();
        // The same triangle drawn 3 times on a 16x16 screen.
        let one = tri(0, [(0.0, 0.0), (16.0, 0.0), (0.0, 16.0)]);
        let s = rasterize(&[one, one, one], &reg, Rect::of_size(16, 16));
        let single = rasterize(&[one], &reg, Rect::of_size(16, 16));
        assert_eq!(s.fragment_count(), 3 * single.fragment_count());
        assert!((s.depth_complexity() - 3.0 * single.depth_complexity()).abs() < 1e-9);
    }

    #[test]
    fn fragments_lie_in_bbox_and_screen() {
        let reg = registry();
        let t = tri(0, [(-5.0, 3.0), (70.0, 10.0), (20.0, 90.0)]);
        let s = rasterize(&[t], &reg, Rect::of_size(64, 64));
        let rec = s.triangles()[0];
        for f in s.fragments_of(&rec) {
            assert!(rec.bbox.contains(f.x as i32, f.y as i32));
            assert!(s.screen().contains(f.x as i32, f.y as i32));
        }
        assert!(s.fragment_count() > 0);
    }

    #[test]
    fn magnified_texture_footprint_stays_on_base_level() {
        let mut reg = TextureRegistry::new();
        let id = reg.register(TextureDesc::new(64, 64).unwrap()).unwrap();
        // 32x32 pixels sampling only 8x8 texels: strong magnification.
        let t = Triangle::new(
            id.0,
            [
                Vertex::new(0.0, 0.0, 0.0, 0.0),
                Vertex::new(32.0, 0.0, 8.0, 0.0),
                Vertex::new(0.0, 32.0, 0.0, 8.0),
            ],
        );
        let s = rasterize(&[t], &reg, Rect::of_size(64, 64));
        // LOD 0: first 4 texels on level 0, whose addresses are below the
        // level-1 base.
        let level1_base = reg.texel_addr(id, 1, 0, 0).index();
        for f in s.fragments() {
            for t in &f.texels[0..4] {
                assert!(t.index() < level1_base);
            }
        }
    }

    /// Fragment count is invariant under triangle order permutation
    /// (rasterization is per-triangle), and every fragment's pixel is
    /// covered by its triangle's bbox.
    #[test]
    fn prop_fragment_totals_are_per_triangle() {
        check(
            "fragment_totals_are_per_triangle",
            &Config::default(),
            |g| g.vec(3..12, |g| (g.f32_in(0.0, 56.0), g.f32_in(0.0, 56.0))),
            |xs| {
                let reg = registry();
                let tris: Vec<Triangle> = xs
                    .windows(3)
                    .map(|w| {
                        tri(0, [(w[0].0, w[0].1), (w[1].0 + 4.0, w[1].1), (w[2].0, w[2].1 + 4.0)])
                    })
                    .collect();
                let forward = rasterize(&tris, &reg, Rect::of_size(64, 64));
                let mut reversed_tris = tris.clone();
                reversed_tris.reverse();
                let backward = rasterize(&reversed_tris, &reg, Rect::of_size(64, 64));
                prop_assert_eq!(forward.fragment_count(), backward.fragment_count());
                Ok(())
            },
        );
    }
}
