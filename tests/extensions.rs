//! Integration coverage of the extension features: Morton layout, victim
//! buffers, SDRAM page mode, frame sequences, sort-last and the geometry
//! bus — each driven through the full public pipeline.

use sortmid::sortlast::{run_sort_last, TriangleAssignment};
use sortmid::{CacheKind, Distribution, Machine, MachineConfig};
use sortmid_cache::CacheGeometry;
use sortmid_memsys::{BusConfig, DramConfig};
use sortmid_raster::rasterize;
use sortmid_scene::animate::{camera_path, CameraStep};
use sortmid_scene::{Benchmark, Scene, SceneBuilder};
use sortmid_texture::{BlockOrder, TextureRegistry};

fn machine_with(f: impl FnOnce(&mut sortmid::MachineConfigBuilder)) -> Machine {
    let mut b = MachineConfig::builder();
    b.processors(8)
        .distribution(Distribution::block(16))
        .cache(CacheKind::PaperL1)
        .bus_ratio(1.0);
    f(&mut b);
    Machine::new(b.build().expect("valid"))
}

#[test]
fn morton_layout_runs_the_full_pipeline() {
    let base = SceneBuilder::benchmark(Benchmark::Quake).scale(0.1).build();
    let mut morton_reg = TextureRegistry::with_block_order(BlockOrder::Morton);
    for id in base.registry().ids() {
        morton_reg.register(base.registry().desc(id)).unwrap();
    }
    let morton = Scene::from_parts(
        "quake-morton".into(),
        base.screen(),
        base.triangles().to_vec(),
        morton_reg,
    );
    let a = rasterize(base.triangles(), base.registry(), base.screen());
    let b = morton.rasterize();
    // Same fragments, different addresses.
    assert_eq!(a.fragment_count(), b.fragment_count());
    let ra = machine_with(|_| {}).run(&a);
    let rb = machine_with(|_| {}).run(&b);
    // Blocking is unchanged, so total misses stay close between layouts.
    let (ma, mb) = (ra.cache_totals().misses() as f64, rb.cache_totals().misses() as f64);
    assert!(
        (ma - mb).abs() / ma < 0.15,
        "layouts should miss similarly: {ma} vs {mb}"
    );
}

#[test]
fn victim_cache_never_fetches_more_than_plain_l1() {
    let stream = SceneBuilder::benchmark(Benchmark::Massive32_11255)
        .scale(0.1)
        .build()
        .rasterize();
    let dm = CacheGeometry::new(16 * 1024, 1, 64).unwrap();
    let plain = machine_with(|b| {
        b.cache(CacheKind::SetAssoc(dm));
    })
    .run(&stream);
    let victim = machine_with(|b| {
        b.cache(CacheKind::Victim(dm, 8));
    })
    .run(&stream);
    let plain_fetches: u64 = plain.nodes().iter().map(|n| n.external_fetches).sum();
    let victim_fetches: u64 = victim.nodes().iter().map(|n| n.external_fetches).sum();
    assert!(victim_fetches <= plain_fetches);
    assert!(victim.total_cycles() <= plain.total_cycles());
}

#[test]
fn dram_page_mode_slows_but_preserves_work() {
    let stream = SceneBuilder::benchmark(Benchmark::TeapotFull)
        .scale(0.1)
        .build()
        .rasterize();
    let flat = machine_with(|_| {}).run(&stream);
    let paged = machine_with(|b| {
        b.dram(Some(DramConfig::sdram_like(BusConfig::ratio(1.0))));
    })
    .run(&stream);
    assert!(paged.total_cycles() >= flat.total_cycles());
    assert_eq!(paged.fragments(), flat.fragments());
    assert_eq!(
        paged.cache_totals().misses(),
        flat.cache_totals().misses(),
        "the memory model must not change cache behaviour"
    );
}

#[test]
fn camera_sequence_runs_with_warm_caches() {
    let scene = SceneBuilder::benchmark(Benchmark::Quake).scale(0.1).build();
    let frames = camera_path(&scene, 3, CameraStep::pan(6.0, 2.0));
    let streams: Vec<_> = frames.iter().map(Scene::rasterize).collect();
    let refs: Vec<&_> = streams.iter().collect();
    let reports = machine_with(|_| {}).run_sequence(&refs);
    assert_eq!(reports.len(), 3);
    // A small pan keeps most of the working set warm: later frames miss
    // less than the cold first one.
    assert!(reports[1].cache_totals().misses() < reports[0].cache_totals().misses());
}

#[test]
fn sort_last_and_geometry_rate_compose() {
    let stream = SceneBuilder::benchmark(Benchmark::Blowout775)
        .scale(0.1)
        .build()
        .rasterize();
    let mut config = MachineConfig::builder();
    config
        .processors(8)
        .cache(CacheKind::PaperL1)
        .bus_ratio(1.0)
        .geometry_cycles_per_triangle(5);
    let config = config.build().unwrap();
    // Sort-last ignores the geometry gate (its nodes pull independently);
    // the sort-middle machine respects it.
    let sl = run_sort_last(&stream, &config, TriangleAssignment::RoundRobin);
    let sm = Machine::new(config).run(&stream);
    let live = stream.triangles().iter().filter(|t| !t.is_culled()).count() as u64;
    assert!(sm.total_cycles() >= live * 5);
    let drawn: u64 = sl.nodes().iter().map(|n| n.pixels).sum();
    assert_eq!(drawn, stream.fragment_count());
}
