//! Figure 9 bench: benchmark image rendering.

use sortmid_bench::scene;
use sortmid_devharness::Suite;
use sortmid_scene::{render, Benchmark};
use std::hint::black_box;

fn main() {
    let mut suite = Suite::new("fig9");
    for b in [Benchmark::TeapotFull, Benchmark::Room3, Benchmark::Quake] {
        let s = scene(b);
        suite.bench(&format!("render/{}", b.name()), || {
            black_box(render::render_color(&s))
        });
    }

    // Write the images once so the bench run leaves the artefact behind.
    let out = std::path::Path::new("target/fig9-bench");
    std::fs::create_dir_all(out).expect("create out dir");
    for b in [Benchmark::TeapotFull, Benchmark::Room3, Benchmark::Quake] {
        let s = scene(b);
        let img = render::render_color(&s);
        let path = out.join(format!("{}.ppm", b.name().replace('.', "_")));
        img.write_ppm(&path).expect("write ppm");
        println!("wrote {}", path.display());
    }

    suite.finish();
}
