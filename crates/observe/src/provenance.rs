//! Run provenance: the stamp that makes artefacts comparable.
//!
//! Every artefact the bench bins emit (`BENCH_sweep.json`,
//! `TRACE_*.json`, `HEATMAP_*.json`, `METRICS_*.json`) carries a
//! `provenance` block recording what produced it: the artefact schema
//! version, the scene RNG seed, a hash of the machine-config grid, the
//! build profile and a host fingerprint. The artefact differ
//! ([`crate::diff`]) refuses to compare documents whose provenance is
//! incomparable — a diff between different schemas, scenes or config
//! grids would attribute phantom deltas to the code under test.
//!
//! Comparability is deliberately asymmetric across the fields:
//!
//! * `schema`, `seed` and `grid_hash` must match **exactly** — they pin
//!   what was measured;
//! * `build` and `host` are *informational* — simulated cycles are
//!   deterministic across hosts and build profiles (the regression gate
//!   relies on that), so a mismatch is reported in diff headers but does
//!   not reject the comparison.
//!
//! # Examples
//!
//! ```
//! use sortmid_observe::Provenance;
//!
//! let a = Provenance::collect(42, 0xfeed);
//! let mut b = Provenance::collect(42, 0xfeed);
//! assert!(a.comparable(&b).is_ok());
//! b.grid_hash = 0xdead;
//! assert!(a.comparable(&b).unwrap_err().contains("grid_hash"));
//! ```

use sortmid_devharness::json::Json;

/// Version of the artefact schemas this workspace emits. Bump when a
/// field changes meaning; the differ refuses cross-version comparisons.
pub const SCHEMA_VERSION: u64 = 1;

/// 64-bit FNV-1a over a byte stream — the deterministic, dependency-free
/// hash behind [`Provenance::grid_hash`] (and anything else that needs a
/// stable content fingerprint across runs and hosts).
pub fn fnv1a_64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// What produced an artefact: schema version, scene seed, config-grid
/// hash, build profile and host fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Artefact schema version ([`SCHEMA_VERSION`] at emit time).
    pub schema: u64,
    /// RNG seed of the scene the run rendered.
    pub seed: u64,
    /// Hash of the machine-config grid (see `sortmid::grid_hash`).
    pub grid_hash: u64,
    /// Build profile: `"release"` or `"debug"`.
    pub build: String,
    /// Host fingerprint: `<os>-<arch>/<hostname>`.
    pub host: String,
}

impl Provenance {
    /// A provenance block for the current build and host, stamping the
    /// given scene seed and config-grid hash.
    pub fn collect(seed: u64, grid_hash: u64) -> Provenance {
        Provenance {
            schema: SCHEMA_VERSION,
            seed,
            grid_hash,
            build: if cfg!(debug_assertions) { "debug" } else { "release" }.to_string(),
            host: host_fingerprint(),
        }
    }

    /// The block as the JSON object artefacts embed under `"provenance"`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::U64(self.schema)),
            ("seed", Json::U64(self.seed)),
            ("grid_hash", Json::str(format!("{:016x}", self.grid_hash))),
            ("build", Json::str(&self.build)),
            ("host", Json::str(&self.host)),
        ])
    }

    /// Reads the `"provenance"` block out of an artefact document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field; a document
    /// without any block reports `missing provenance block` (the pre-PR-9
    /// artefact generation — regenerate it).
    pub fn from_doc(doc: &Json) -> Result<Provenance, String> {
        let block = doc
            .get("provenance")
            .ok_or_else(|| "missing provenance block (artefact predates provenance stamping; regenerate it)".to_string())?;
        let field_u64 = |key: &str| {
            block
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("provenance: missing or mistyped '{key}'"))
        };
        let field_str = |key: &str| {
            block
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("provenance: missing or mistyped '{key}'"))
        };
        let grid_hex = field_str("grid_hash")?;
        let grid_hash = u64::from_str_radix(&grid_hex, 16)
            .map_err(|_| format!("provenance: 'grid_hash' is not a hex hash: '{grid_hex}'"))?;
        Ok(Provenance {
            schema: field_u64("schema")?,
            seed: field_u64("seed")?,
            grid_hash,
            build: field_str("build")?,
            host: field_str("host")?,
        })
    }

    /// Whether a diff between artefacts carrying `self` and `other` is
    /// meaningful: schema, seed and grid hash must match exactly.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first incomparable field and both
    /// values.
    pub fn comparable(&self, other: &Provenance) -> Result<(), String> {
        if self.schema != other.schema {
            return Err(format!(
                "incomparable artefacts: schema {} vs {}",
                self.schema, other.schema
            ));
        }
        if self.seed != other.seed {
            return Err(format!(
                "incomparable artefacts: scene seed {} vs {}",
                self.seed, other.seed
            ));
        }
        if self.grid_hash != other.grid_hash {
            return Err(format!(
                "incomparable artefacts: grid_hash {:016x} vs {:016x} (different config grids)",
                self.grid_hash, other.grid_hash
            ));
        }
        Ok(())
    }

    /// Informational build/host drift between two comparable blocks —
    /// worth a header line in a diff (wall times are not portable across
    /// hosts), but never a rejection.
    pub fn environment_drift(&self, other: &Provenance) -> Option<String> {
        let mut notes = Vec::new();
        if self.build != other.build {
            notes.push(format!("build {} vs {}", self.build, other.build));
        }
        if self.host != other.host {
            notes.push(format!("host {} vs {}", self.host, other.host));
        }
        (!notes.is_empty()).then(|| notes.join(", "))
    }
}

/// `<os>-<arch>/<hostname>`, with the hostname read from `/etc/hostname`
/// (then `$HOSTNAME`), falling back to `unknown`.
pub fn host_fingerprint() -> String {
    let hostname = std::fs::read_to_string("/etc/hostname")
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .or_else(|| std::env::var("HOSTNAME").ok().filter(|s| !s.is_empty()))
        .unwrap_or_else(|| "unknown".to_string());
    format!(
        "{}-{}/{}",
        std::env::consts::OS,
        std::env::consts::ARCH,
        hostname
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a_64([]), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(*b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(*b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn provenance_round_trips_through_json() {
        let p = Provenance::collect(1234, 0xdead_beef_cafe_f00d);
        let doc = Json::obj([("provenance", p.to_json())]);
        let back = Provenance::from_doc(&doc).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.schema, SCHEMA_VERSION);
    }

    #[test]
    fn missing_block_and_bad_fields_report_clearly() {
        let e = Provenance::from_doc(&Json::obj::<&str>([])).unwrap_err();
        assert!(e.contains("missing provenance"), "{e}");
        let doc = Json::obj([(
            "provenance",
            Json::obj([("schema", Json::str("one"))]),
        )]);
        let e = Provenance::from_doc(&doc).unwrap_err();
        assert!(e.contains("grid_hash") || e.contains("schema"), "{e}");
    }

    #[test]
    fn comparability_pins_schema_seed_and_grid() {
        let a = Provenance::collect(7, 99);
        assert!(a.comparable(&a).is_ok());
        let mut b = a.clone();
        b.schema += 1;
        assert!(a.comparable(&b).unwrap_err().contains("schema"));
        let mut b = a.clone();
        b.seed = 8;
        assert!(a.comparable(&b).unwrap_err().contains("seed"));
        let mut b = a.clone();
        b.grid_hash = 100;
        assert!(a.comparable(&b).unwrap_err().contains("grid_hash"));
    }

    #[test]
    fn build_and_host_drift_is_informational_only() {
        let a = Provenance::collect(7, 99);
        let mut b = a.clone();
        b.build = format!("{}-lto", a.build);
        b.host = "plan9-mips/elsewhere".to_string();
        assert!(a.comparable(&b).is_ok());
        let drift = a.environment_drift(&b).unwrap();
        assert!(drift.contains("build") && drift.contains("host"), "{drift}");
        assert_eq!(a.environment_drift(&a), None);
    }

    #[test]
    fn host_fingerprint_names_os_and_arch() {
        let f = host_fingerprint();
        assert!(f.starts_with(std::env::consts::OS), "{f}");
        assert!(f.contains(std::env::consts::ARCH), "{f}");
    }
}
