//! Cadence-bucketed time series over a recorded run.
//!
//! A full event trace is exact but bulky; for terminal summaries the
//! interesting signals — FIFO occupancy, bus utilization — are sampled
//! into fixed-width cycle bins. A bin holds the *time-weighted mean* of
//! the signal over its cadence window, so a FIFO that sat at depth 8 for
//! half a bin and empty for the other half reads 4.0.

use crate::Cycle;
use sortmid_util::chart::{Chart, Series};
use sortmid_util::table::Table;

/// A sampled signal: `bins[i]` covers cycles `[i*cadence, (i+1)*cadence)`.
///
/// # Examples
///
/// ```
/// use sortmid_observe::TimeSeries;
///
/// // A queue that holds one entry from cycle 0 to 50, then empties.
/// let ts = TimeSeries::occupancy(&[(0, 1), (50, -1)], 50, 100);
/// assert_eq!(ts.bins(), &[1.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    cadence: Cycle,
    bins: Vec<f64>,
}

impl TimeSeries {
    /// Integrates `(cycle, ±1)` steps (sorted by cycle) into per-bin mean
    /// queue depth over `[0, horizon)`.
    ///
    /// # Panics
    ///
    /// Panics if `cadence` is zero.
    pub fn occupancy(steps: &[(Cycle, i64)], cadence: Cycle, horizon: Cycle) -> TimeSeries {
        assert!(cadence > 0, "cadence must be at least one cycle");
        let n_bins = (horizon.div_ceil(cadence)).max(1) as usize;
        let mut area = vec![0.0f64; n_bins];
        let mut level: i64 = 0;
        let mut t: Cycle = 0;
        let mut idx = 0usize;
        while t < horizon {
            // Apply all steps at time t before integrating past it.
            while idx < steps.len() && steps[idx].0 <= t {
                level += steps[idx].1;
                idx += 1;
            }
            let next_change = steps.get(idx).map_or(horizon, |s| s.0.min(horizon));
            let until = next_change.max(t + 1).min(horizon);
            // Spread `level` over [t, until) across the bins it crosses.
            let mut seg = t;
            while seg < until {
                let bin = (seg / cadence) as usize;
                let bin_end = ((bin as u64 + 1) * cadence).min(until);
                area[bin] += level.max(0) as f64 * (bin_end - seg) as f64;
                seg = bin_end;
            }
            t = until;
        }
        let bins = area.into_iter().map(|a| a / cadence as f64).collect();
        TimeSeries { cadence, bins }
    }

    /// Buckets non-overlapping `(start, end)` busy spans into per-bin
    /// utilization (fraction of the bin covered) over `[0, horizon)`.
    ///
    /// # Panics
    ///
    /// Panics if `cadence` is zero.
    pub fn utilization(spans: &[(Cycle, Cycle)], cadence: Cycle, horizon: Cycle) -> TimeSeries {
        assert!(cadence > 0, "cadence must be at least one cycle");
        let n_bins = (horizon.div_ceil(cadence)).max(1) as usize;
        let mut busy = vec![0.0f64; n_bins];
        for &(start, end) in spans {
            let mut seg = start.min(horizon);
            let end = end.min(horizon);
            while seg < end {
                let bin = (seg / cadence) as usize;
                let bin_end = ((bin as u64 + 1) * cadence).min(end);
                busy[bin] += (bin_end - seg) as f64;
                seg = bin_end;
            }
        }
        let bins = busy.into_iter().map(|b| b / cadence as f64).collect();
        TimeSeries { cadence, bins }
    }

    /// The bin width in cycles.
    pub fn cadence(&self) -> Cycle {
        self.cadence
    }

    /// The per-bin means.
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// The largest bin value (0 when empty).
    pub fn max(&self) -> f64 {
        self.bins.iter().copied().fold(0.0, f64::max)
    }

    /// The mean over all bins (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.bins.is_empty() {
            0.0
        } else {
            self.bins.iter().sum::<f64>() / self.bins.len() as f64
        }
    }

    /// Renders the series as an ASCII chart (bin start cycle on x).
    pub fn chart(&self, label: &str, width: usize, height: usize) -> String {
        let points: Vec<(f64, f64)> = self
            .bins
            .iter()
            .enumerate()
            .map(|(i, &v)| ((i as u64 * self.cadence) as f64, v))
            .collect();
        Chart::new(width, height)
            .series(Series::new(label, points))
            .render()
    }

    /// A compact value histogram: `buckets` equal-width value ranges with
    /// the number of bins (time share) falling in each.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn histogram(&self, buckets: usize) -> Table {
        assert!(buckets > 0, "need at least one bucket");
        let max = self.max();
        let width = if max > 0.0 { max / buckets as f64 } else { 1.0 };
        let mut counts = vec![0u64; buckets];
        for &v in &self.bins {
            let b = ((v / width) as usize).min(buckets - 1);
            counts[b] += 1;
        }
        let total = self.bins.len().max(1) as f64;
        let mut t = Table::new(&["value range", "bins", "time%"]);
        for (i, &c) in counts.iter().enumerate() {
            t.row_owned(vec![
                format!("[{:.1}, {:.1})", i as f64 * width, (i + 1) as f64 * width),
                c.to_string(),
                format!("{:.1}", c as f64 * 100.0 / total),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_time_weights_within_a_bin() {
        // Depth 2 for the first half of a 100-cycle bin, 0 after.
        let ts = TimeSeries::occupancy(&[(0, 2), (50, -2)], 100, 100);
        assert_eq!(ts.bins(), &[1.0]);
    }

    #[test]
    fn occupancy_spans_multiple_bins() {
        // One entry alive over cycles [10, 230).
        let ts = TimeSeries::occupancy(&[(10, 1), (230, -1)], 100, 300);
        assert_eq!(ts.bins().len(), 3);
        assert!((ts.bins()[0] - 0.9).abs() < 1e-12);
        assert_eq!(ts.bins()[1], 1.0);
        assert!((ts.bins()[2] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn occupancy_of_no_steps_is_flat_zero() {
        let ts = TimeSeries::occupancy(&[], 10, 100);
        assert_eq!(ts.bins().len(), 10);
        assert_eq!(ts.max(), 0.0);
        assert_eq!(ts.mean(), 0.0);
    }

    #[test]
    fn utilization_measures_span_coverage() {
        let ts = TimeSeries::utilization(&[(0, 16), (20, 36)], 100, 200);
        assert!((ts.bins()[0] - 0.32).abs() < 1e-12);
        assert_eq!(ts.bins()[1], 0.0);
    }

    #[test]
    fn utilization_clamps_spans_to_horizon() {
        let ts = TimeSeries::utilization(&[(90, 150)], 100, 100);
        assert_eq!(ts.bins().len(), 1);
        assert!((ts.bins()[0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn chart_and_histogram_render() {
        let ts = TimeSeries::occupancy(&[(0, 3), (150, -3)], 50, 300);
        let chart = ts.chart("fifo", 40, 8);
        assert!(chart.contains("fifo"));
        let hist = ts.histogram(3);
        assert_eq!(hist.len(), 3);
        assert!(hist.to_csv().contains("time%") || hist.to_ascii().contains("time%"));
    }
}
