//! Screen-space geometry primitives for the `sortmid` simulator.
//!
//! Everything in the texture-mapping stage of a sort-middle machine operates
//! on *screen-space* triangles: the geometry stage has already transformed,
//! lit and projected them. This crate provides those primitives:
//!
//! * [`vec2::Vec2`] — a 2-D vector/point.
//! * [`rect::Rect`] — axis-aligned integer rectangles (tiles, bounding
//!   boxes, screens).
//! * [`tri::Triangle`] — a screen-space triangle with per-vertex texture
//!   coordinates and the edge-function machinery that the rasterizer and the
//!   setup-cost model share.
//!
//! # Examples
//!
//! ```
//! use sortmid_geom::tri::{Triangle, Vertex};
//!
//! let tri = Triangle::new(
//!     0,
//!     [
//!         Vertex::new(0.0, 0.0, 0.0, 0.0),
//!         Vertex::new(8.0, 0.0, 8.0, 0.0),
//!         Vertex::new(0.0, 8.0, 0.0, 8.0),
//!     ],
//! );
//! assert!(tri.signed_area() > 0.0);
//! ```

pub mod rect;
pub mod tri;
pub mod vec2;

pub use rect::Rect;
pub use tri::{Triangle, Vertex};
pub use vec2::Vec2;
