//! A sort-last (object-parallel) texture-mapping stage, as a baseline.
//!
//! The authors' earlier work (\[13\] ICS'98, \[14\] Euro-Par'99) studied
//! texture caches in a **sort-last** machine: triangles — not screen tiles —
//! are distributed among nodes, each node rasterizes its triangles over the
//! full screen, and a composition network merges the images afterwards.
//! The HPCA paper's sort-middle study is motivated against that backdrop,
//! so this module provides the comparison point: same node model (cache,
//! bus, setup floor, 1 pixel/cycle engine), triangle-granular distribution,
//! no clipping and no composition cost (the paper never charges for image
//! networks either).

use crate::config::MachineConfig;
use crate::node::Node;
use crate::report::RunReport;
use sortmid_raster::FragmentStream;
use std::fmt;

/// How triangles are dealt to nodes in the sort-last machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriangleAssignment {
    /// Triangle `k` goes to node `k mod P` — perfect triangle-count
    /// balance, but consecutive triangles of an object (which share
    /// texture regions) land on different nodes.
    RoundRobin,
    /// Runs of `chunk` consecutive triangles go to the same node —
    /// preserves object-level texture locality at the cost of coarser
    /// balancing. This approximates per-object distribution (the paper's
    /// sort-last maps "the textures on different objects in each engine").
    Chunked {
        /// Consecutive triangles per run.
        chunk: u32,
    },
}

impl TriangleAssignment {
    /// The node that triangle `index` is assigned to.
    pub fn owner(&self, index: u64, procs: u32) -> u32 {
        match self {
            TriangleAssignment::RoundRobin => (index % procs as u64) as u32,
            TriangleAssignment::Chunked { chunk } => {
                ((index / *chunk as u64) % procs as u64) as u32
            }
        }
    }
}

impl fmt::Display for TriangleAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TriangleAssignment::RoundRobin => write!(f, "round-robin"),
            TriangleAssignment::Chunked { chunk } => write!(f, "chunked-{chunk}"),
        }
    }
}

/// Runs the sort-last texture-mapping stage: node parameters (cache, bus,
/// buffers, setup floor) come from `config`; its `distribution` is ignored
/// — triangles are dealt whole according to `assignment`.
///
/// # Examples
///
/// ```
/// use sortmid::sortlast::{run_sort_last, TriangleAssignment};
/// use sortmid::MachineConfig;
/// use sortmid_scene::{Benchmark, SceneBuilder};
///
/// let stream = SceneBuilder::benchmark(Benchmark::Quake).scale(0.1).build().rasterize();
/// let mut config = MachineConfig::uniprocessor();
/// config.processors = 4;
/// let report = run_sort_last(&stream, &config, TriangleAssignment::RoundRobin);
/// assert_eq!(report.fragments(), stream.fragment_count());
/// ```
pub fn run_sort_last(
    stream: &FragmentStream,
    config: &MachineConfig,
    assignment: TriangleAssignment,
) -> RunReport {
    let procs = config.processors;
    let mut nodes: Vec<Node> = (0..procs).map(|_| Node::new(config)).collect();
    let mut index = 0u64;
    for tri in stream.triangles() {
        if tri.is_culled() {
            continue;
        }
        let owner = assignment.owner(index, procs) as usize;
        index += 1;
        // Sort-last nodes run independently: the geometry stage routes each
        // triangle to exactly one node, so no broadcast backpressure.
        nodes[owner].process_triangle(0, stream.fragments_of(tri).iter());
    }
    let total_cycles = nodes.iter().map(Node::finish_time).max().unwrap_or(0);
    let node_reports: Vec<_> = nodes.iter().map(Node::report).collect();
    RunReport::new(
        format!("sort-last/{}p/{assignment}/{}", procs, config.cache),
        total_cycles,
        node_reports,
        stream.fragment_count(),
        stream.triangle_count() as u64,
        index,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheKind;
    use crate::distribution::Distribution;
    use crate::machine::Machine;
    use sortmid_scene::{Benchmark, SceneBuilder};

    fn stream() -> FragmentStream {
        SceneBuilder::benchmark(Benchmark::TeapotFull)
            .scale(0.12)
            .build()
            .rasterize()
    }

    fn config(procs: u32, cache: CacheKind) -> MachineConfig {
        MachineConfig::builder()
            .processors(procs)
            .cache(cache)
            .bus_ratio(1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn assignment_owners_are_in_range() {
        for a in [TriangleAssignment::RoundRobin, TriangleAssignment::Chunked { chunk: 7 }] {
            for i in 0..100u64 {
                assert!(a.owner(i, 5) < 5, "{a} index {i}");
            }
        }
        assert_eq!(TriangleAssignment::RoundRobin.owner(13, 4), 1);
        assert_eq!(TriangleAssignment::Chunked { chunk: 10 }.owner(13, 4), 1);
        assert_eq!(TriangleAssignment::Chunked { chunk: 10 }.owner(45, 4), 0);
    }

    #[test]
    fn every_fragment_is_drawn_once() {
        let s = stream();
        for a in [TriangleAssignment::RoundRobin, TriangleAssignment::Chunked { chunk: 16 }] {
            let r = run_sort_last(&s, &config(8, CacheKind::PaperL1), a);
            let drawn: u64 = r.nodes().iter().map(|n| n.pixels).sum();
            assert_eq!(drawn, s.fragment_count(), "{a}");
        }
    }

    #[test]
    fn one_processor_matches_sort_middle() {
        // With a single node both architectures degenerate to the same
        // serial engine.
        let s = stream();
        let sl = run_sort_last(&s, &config(1, CacheKind::PaperL1), TriangleAssignment::RoundRobin);
        let sm = Machine::new(config(1, CacheKind::PaperL1)).run(&s);
        assert_eq!(sl.total_cycles(), sm.total_cycles());
        assert_eq!(sl.cache_totals().misses(), sm.cache_totals().misses());
    }

    #[test]
    fn round_robin_balances_triangles_perfectly() {
        let s = stream();
        let r = run_sort_last(&s, &config(8, CacheKind::Perfect), TriangleAssignment::RoundRobin);
        let counts: Vec<u64> = r.nodes().iter().map(|n| n.triangles).collect();
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1, "triangle counts {counts:?}");
    }

    #[test]
    fn sort_last_pays_no_overlap() {
        // Each triangle goes to exactly one node: overlap factor 1 for
        // live triangles (vs > 1 for sort-middle on the same scene).
        let s = stream();
        let sl = run_sort_last(&s, &config(16, CacheKind::Perfect), TriangleAssignment::RoundRobin);
        let live = s.triangles().iter().filter(|t| !t.is_culled()).count() as u64;
        assert_eq!(sl.triangles_routed(), live);
        let sm = Machine::new(
            MachineConfig::builder()
                .processors(16)
                .distribution(Distribution::block(16))
                .cache(CacheKind::Perfect)
                .build()
                .unwrap(),
        )
        .run(&s);
        assert!(sm.triangles_routed() > live);
    }

    #[test]
    fn chunking_recovers_texture_locality() {
        // Round robin interleaves objects across nodes; chunked runs keep
        // an object's texture walk on one cache.
        let s = stream();
        let rr = run_sort_last(&s, &config(16, CacheKind::PaperL1), TriangleAssignment::RoundRobin);
        let chunked = run_sort_last(
            &s,
            &config(16, CacheKind::PaperL1),
            TriangleAssignment::Chunked { chunk: 64 },
        );
        assert!(
            chunked.texel_to_fragment() <= rr.texel_to_fragment() * 1.05,
            "chunked {:.3} should not exceed round-robin {:.3}",
            chunked.texel_to_fragment(),
            rr.texel_to_fragment()
        );
    }
}
