//! Host-side metrics primitives: atomic counters, gauges and log2
//! histograms behind a name-keyed registry.
//!
//! The *simulated* machine already has exact cycle accounting
//! ([`crate::breakdown`]); this module is the equivalent substrate for the
//! *host* pipeline that runs the sweeps. Everything here is update-cheap
//! (one atomic RMW per event) and aggregation-lazy: percentiles and means
//! are derived at export time, never on the hot path.
//!
//! * [`Counter`] — monotonically increasing event count.
//! * [`Gauge`] — last-value / high-water mark (e.g. peak queue depth).
//! * [`Log2Histogram`] — fixed 65-bucket power-of-two histogram; bucket
//!   `k` holds values in `[2^(k-1), 2^k)` (bucket 0 holds zero). Exact
//!   count/sum/min/max ride along, so means are exact and percentiles are
//!   bucket-resolution approximations clamped into `[min, max]`.
//! * [`MetricsRegistry`] — `name -> metric` map. Registration takes a
//!   lock; updates through a held [`std::sync::Arc`] handle are lock-free,
//!   and the convenience `add`/`observe`/`gauge_set_max` entry points keep
//!   coarse-grained instrumentation sites to one line.
//!
//! # Examples
//!
//! ```
//! use sortmid_observe::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! reg.add("sweep.configs", 60);
//! reg.observe("host.run_ns", 1500);
//! reg.observe("host.run_ns", 90_000);
//! let hist = reg.histogram("host.run_ns");
//! assert_eq!(hist.count(), 2);
//! assert_eq!(hist.sum(), 91_500);
//! assert_eq!(reg.counter("sweep.configs").get(), 60);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sortmid_devharness::json::Json;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the count.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value / high-water gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Raises the value to `value` if it is higher (high-water semantics).
    #[inline]
    pub fn set_max(&self, value: u64) {
        self.value.fetch_max(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Bucket count of [`Log2Histogram`]: one per bit width of a `u64`, plus
/// the zero bucket.
pub const LOG2_BUCKETS: usize = 65;

/// A fixed-bucket power-of-two histogram with exact count/sum/min/max.
///
/// Values land in bucket `64 - leading_zeros(v)` (zero in bucket 0), so
/// recording is one shift-free classify plus one atomic add — cheap enough
/// to observe every per-config run of a sweep. Percentiles are answered at
/// bucket resolution (the upper edge of the rank's bucket, clamped to the
/// observed `[min, max]`), which is what a wall-time profile needs: "p99
/// is ~2x p50" survives the rounding, exact nanoseconds do not matter.
#[derive(Debug)]
pub struct Log2Histogram {
    buckets: [AtomicU64; LOG2_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [const { AtomicU64::new(0) }; LOG2_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket a value lands in: 0 for zero, else `floor(log2(v)) + 1`.
#[inline]
pub fn log2_bucket(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.buckets[log2_bucket(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        match self.min.load(Ordering::Relaxed) {
            u64::MAX if self.count() == 0 => None,
            v => Some(v),
        }
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// Exact mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        match self.count() {
            0 => None,
            n => Some(self.sum() as f64 / n as f64),
        }
    }

    /// Bucket-resolution percentile (`0.0 < pct <= 100.0`): the upper edge
    /// of the bucket holding the nearest-rank sample, clamped into the
    /// observed `[min, max]`. `None` when empty.
    pub fn percentile(&self, pct: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((pct / 100.0) * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (k, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper edge of bucket k: 2^k - 1 (bucket 0 holds zero).
                // Wrapping on purpose: bucket 64 (values above 2^63) has
                // upper edge 2^64 - 1, which wraps exactly to u64::MAX.
                let edge =
                    if k == 0 { 0 } else { (1u64 << (k - 1)).wrapping_mul(2).wrapping_sub(1) };
                let lo = self.min().unwrap_or(0);
                let hi = self.max().unwrap_or(edge);
                return Some(edge.clamp(lo, hi));
            }
        }
        self.max()
    }

    /// Non-empty `(bucket index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(k, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((k, n))
            })
            .collect()
    }

    /// JSON snapshot: exact stats, bucket-resolution p50/p90/p99, and the
    /// sparse bucket list.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::U64(self.count())),
            ("sum", Json::U64(self.sum())),
            ("min", Json::U64(self.min().unwrap_or(0))),
            ("max", Json::U64(self.max().unwrap_or(0))),
            ("p50", Json::U64(self.percentile(50.0).unwrap_or(0))),
            ("p90", Json::U64(self.percentile(90.0).unwrap_or(0))),
            ("p99", Json::U64(self.percentile(99.0).unwrap_or(0))),
            (
                "buckets",
                Json::arr(self.nonzero_buckets().into_iter().map(|(k, n)| {
                    Json::arr([Json::U64(k as u64), Json::U64(n)])
                })),
            ),
        ])
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Log2Histogram>),
}

/// A name-keyed registry of [`Counter`]s, [`Gauge`]s and
/// [`Log2Histogram`]s.
///
/// Names are registered on first use; asking for an existing name with a
/// different metric kind panics — a silent kind clash would split one
/// logical metric across two series.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registered on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric '{name}' is registered as a non-counter"),
        }
    }

    /// The gauge named `name`, registered on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric '{name}' is registered as a non-gauge"),
        }
    }

    /// The histogram named `name`, registered on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Log2Histogram> {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Log2Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric '{name}' is registered as a non-histogram"),
        }
    }

    /// Adds `delta` to counter `name` (one-line instrumentation site).
    pub fn add(&self, name: &str, delta: u64) {
        self.counter(name).add(delta);
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        self.histogram(name).observe(value);
    }

    /// Raises gauge `name` to `value` if higher.
    pub fn gauge_set_max(&self, name: &str, value: u64) {
        self.gauge(name).set_max(value);
    }

    /// JSON snapshot: `counters`, `gauges` and `histograms` objects, each
    /// name-sorted (the registry map is ordered).
    pub fn to_json(&self) -> Json {
        let map = self.inner.lock().expect("metrics registry poisoned");
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => counters.push((name.clone(), Json::U64(c.get()))),
                Metric::Gauge(g) => gauges.push((name.clone(), Json::U64(g.get()))),
                Metric::Histogram(h) => histograms.push((name.clone(), h.to_json())),
            }
        }
        Json::obj([
            ("counters", Json::Obj(counters)),
            ("gauges", Json::Obj(gauges)),
            ("histograms", Json::Obj(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_bucket_edges() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(1023), 10);
        assert_eq!(log2_bucket(1024), 11);
        assert_eq!(log2_bucket(u64::MAX), 64);
    }

    #[test]
    fn histogram_tracks_exact_stats() {
        let h = Log2Histogram::new();
        assert_eq!(h.percentile(50.0), None);
        for v in [0u64, 1, 100, 1000, 100_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 101_101);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100_000));
        assert_eq!(h.mean(), Some(101_101.0 / 5.0));
    }

    #[test]
    fn percentiles_are_bucket_resolution_and_clamped() {
        let h = Log2Histogram::new();
        for _ in 0..99 {
            h.observe(1000); // bucket 10, upper edge 1023
        }
        h.observe(1_000_000); // bucket 20
        let p50 = h.percentile(50.0).unwrap();
        assert!((1000..=1023).contains(&p50), "{p50}");
        // p99 rank (ceil(0.99*100)=99) still lands in the 1000s bucket;
        // p100 would reach the outlier.
        let p99 = h.percentile(99.0).unwrap();
        assert!(p99 <= 1023, "{p99}");
        assert_eq!(h.percentile(100.0), Some(1_000_000));
        // A one-value histogram clamps every percentile to that value.
        let one = Log2Histogram::new();
        one.observe(777);
        assert_eq!(one.percentile(1.0), Some(777));
        assert_eq!(one.percentile(99.0), Some(777));
    }

    #[test]
    fn registry_registers_on_first_use_and_snapshots() {
        let reg = MetricsRegistry::new();
        reg.add("a.count", 2);
        reg.add("a.count", 3);
        reg.gauge_set_max("b.peak", 10);
        reg.gauge_set_max("b.peak", 7);
        reg.observe("c.ns", 128);
        assert_eq!(reg.counter("a.count").get(), 5);
        assert_eq!(reg.gauge("b.peak").get(), 10);
        let doc = reg.to_json();
        assert_eq!(
            doc.get("counters").and_then(|c| c.get("a.count")).and_then(Json::as_u64),
            Some(5)
        );
        assert_eq!(
            doc.get("gauges").and_then(|g| g.get("b.peak")).and_then(Json::as_u64),
            Some(10)
        );
        assert_eq!(
            doc.get("histograms")
                .and_then(|h| h.get("c.ns"))
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
        // The snapshot renders and parses through the devharness reader.
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap().render(), text);
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_clash_panics() {
        let reg = MetricsRegistry::new();
        reg.observe("x", 1);
        reg.add("x", 1);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let reg = MetricsRegistry::new();
        let counter = reg.counter("hits");
        let hist = reg.histogram("ns");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..1000u64 {
                        counter.inc();
                        hist.observe(i);
                    }
                });
            }
        });
        assert_eq!(counter.get(), 4000);
        assert_eq!(hist.count(), 4000);
        assert_eq!(hist.sum(), 4 * (999 * 1000 / 2));
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        for pct in [0.001, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(h.percentile(pct), None, "p{pct} of nothing");
        }
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn single_sample_pins_every_percentile_to_it() {
        let h = Log2Histogram::new();
        h.observe(37);
        assert_eq!((h.count(), h.sum()), (1, 37));
        assert_eq!((h.min(), h.max()), (Some(37), Some(37)));
        // The bucket edge (63) clamps into the observed range [37, 37].
        for pct in [0.001, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(pct), Some(37), "p{pct} of a singleton");
        }
    }

    #[test]
    fn all_samples_in_one_bucket_clamp_to_the_observed_range() {
        let h = Log2Histogram::new();
        // 1000..=1023 all land in bucket 10 (edge 1023).
        for v in 1000..=1023 {
            h.observe(v);
        }
        assert_eq!(h.nonzero_buckets(), vec![(10, 24)]);
        // Every percentile resolves to the bucket edge, clamped by max.
        assert_eq!(h.percentile(1.0), Some(1023));
        assert_eq!(h.percentile(50.0), Some(1023));
        assert_eq!(h.percentile(100.0), Some(1023));
    }

    #[test]
    fn u64_max_lands_in_the_last_bucket_without_overflow() {
        let h = Log2Histogram::new();
        h.observe(u64::MAX);
        h.observe(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), u64::MAX); // MAX + 0, no wrap
        assert_eq!((h.min(), h.max()), (Some(0), Some(u64::MAX)));
        // Bucket 0 holds the zero; bucket 64's upper edge is u64::MAX
        // and the edge arithmetic must not overflow computing it.
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (64, 1)]);
        assert_eq!(h.percentile(50.0), Some(0));
        assert_eq!(h.percentile(100.0), Some(u64::MAX));
    }
}
