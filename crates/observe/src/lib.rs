//! `sortmid-observe` — cycle-attributed tracing and metrics for the
//! `sortmid` machine.
//!
//! The paper's central claims are *time-domain* phenomena: triangle-FIFO
//! starvation (Figure 8), bus-saturation bursts (Section 6) and setup
//! overhead (Figure 5). End-of-run totals can say *that* a configuration
//! loses; only a timeline can say *why* and *when*. This crate is the
//! observability layer the simulator threads through its hot path:
//!
//! * [`sink::TraceSink`] — a generic event sink parameter. The machine,
//!   nodes and engine are generic over it; the [`sink::NullSink`]
//!   monomorphizes every `record` call to nothing, so untraced runs pay
//!   zero cost (a bench guard in `sortmid-bench` pins this).
//! * [`event::TraceEvent`] — the event vocabulary: triangle start/retire/
//!   discard, FIFO push/pop, and bus line-fill transactions (one per cache
//!   miss).
//! * [`breakdown::CycleBreakdown`] — per-node cycle accounting. Every
//!   cycle from 0 to a node's finish time is attributed to exactly one of
//!   {triangle-setup, shading-busy, bus-stall, fifo-starved,
//!   idle-after-finish}, with the identity `setup + busy + bus_stall +
//!   starved + idle == finish` enforced by construction and checked by
//!   property tests and `bench_check`.
//! * [`series::TimeSeries`] — cadence-bucketed sampling of FIFO occupancy
//!   and bus utilization, rendered as terminal charts/tables through
//!   `sortmid-util`.
//! * [`perfetto`] — a Chrome-trace-event exporter: a recorded run becomes
//!   a `TRACE_<config>.json` that opens directly in `ui.perfetto.dev`.
//! * [`heatmap::ScreenGrid`] + [`attribution::SpatialCollector`] — the
//!   *spatial* metrics layer: per-tile depth complexity, owner-node
//!   fragment load, setup cycles and three-C-classified cache misses,
//!   exported as false-color PPM heatmaps, `HEATMAP_<preset>.json`
//!   artefacts, and terminal summaries.
//! * [`host::HostSink`] + [`metrics::MetricsRegistry`] — the *host*
//!   profiling layer: hierarchical RAII phase spans over the sweep
//!   pipeline (plan build, batch pivot, capture, stack-distance replay,
//!   timing synthesis), atomic counters/gauges/log2 histograms, and
//!   per-worker utilization with the exact identity
//!   `busy + idle == wall`. [`host::NullHostSink`] monomorphizes it all
//!   away, exactly like [`sink::NullSink`] does for cycle tracing; a
//!   sealed [`host::HostProfile`] exports as `METRICS_<name>.json` and
//!   as wall-time tracks in the Perfetto document
//!   ([`perfetto::chrome_trace_with_host`]).
//! * [`provenance::Provenance`] — the run-identity block every artefact
//!   emitter stamps (schema version, scene seed, FNV hash of the config
//!   grid, build profile, host fingerprint). Schema/seed/grid must match
//!   for two artefacts to be comparable; build/host differences are
//!   reported as informational drift.
//! * [`diff`] — the *differential* layer: [`diff::SweepDiff`],
//!   [`diff::HeatmapDiff`] and [`diff::MetricsDiff`] compute exact signed
//!   deltas between two comparable artefacts at every level the
//!   instrumentation records (per-config cycles split by the five-way
//!   breakdown, tile-plane delta grids with owner flips and three-C
//!   miss-class movement, host phase/counter/histogram shifts) and rank
//!   them into a printable explanation; the `sortmid-diff` bin and
//!   `bench_check --explain` drive it.
//! * [`palette`] — the shared color maps: the heat ramp, the
//!   golden-angle owner palette, and the diverging blue-white-red delta
//!   palette the diff PPMs use.
//!
//! # Examples
//!
//! Recording and summarising events (the machine does the recording in a
//! real run):
//!
//! ```
//! use sortmid_observe::{TraceEvent, TraceRecorder, TraceSink};
//!
//! let mut rec = TraceRecorder::new();
//! rec.record(TraceEvent::FifoPush { node: 0, at: 10 });
//! rec.record(TraceEvent::FifoPop { node: 0, at: 35 });
//! assert_eq!(rec.events().len(), 2);
//! assert_eq!(rec.fifo_steps(0), vec![(10, 1), (35, -1)]);
//! ```

pub mod attribution;
pub mod breakdown;
pub mod diff;
pub mod event;
pub mod heatmap;
pub mod host;
pub mod metrics;
pub mod palette;
pub mod perfetto;
pub mod provenance;
pub mod series;
pub mod sink;

pub use attribution::{MissClass, MissClassCounts, SpatialCollector, TileStats};
pub use breakdown::{breakdown_table, BreakdownDelta, CycleBreakdown, CycleIdentityError};
pub use diff::{HeatmapDiff, MetricsDiff, SweepDiff};
pub use event::TraceEvent;
pub use heatmap::{GridSummary, ScreenGrid};
pub use palette::{diverging_color, heat_color, owner_color, sqrt_channel};
pub use provenance::{Provenance, SCHEMA_VERSION};
pub use host::{
    peak_rss_bytes, HostProfile, HostProfiler, HostSink, HostSpan, NullHostSink, PhaseTotal,
    SpanRecord, WorkerStats,
};
pub use metrics::{log2_bucket, Counter, Gauge, Log2Histogram, MetricsRegistry, LOG2_BUCKETS};
pub use perfetto::{chrome_trace, chrome_trace_with_host, HOST_PID};
pub use series::TimeSeries;
pub use sink::{NullSink, TraceRecorder, TraceSink};

/// Simulation time in engine cycles, mirroring `sortmid_memsys::Cycle`
/// (redeclared here so the substrate can depend on this crate without a
/// cycle).
pub type Cycle = u64;
