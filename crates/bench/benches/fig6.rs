//! Figure 6 bench: texel-to-fragment ratio under infinite bus bandwidth.

use criterion::{criterion_group, criterion_main, Criterion};
use sortmid::{CacheKind, Distribution};
use sortmid_bench::{run_machine, stream};
use sortmid_scene::Benchmark;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let teapot = stream(Benchmark::TeapotFull);
    let massive = stream(Benchmark::Massive32_11255);
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);

    group.bench_function("locality/teapot/block-16/16p", |b| {
        b.iter(|| {
            black_box(run_machine(
                &teapot,
                16,
                Distribution::block(16),
                CacheKind::PaperL1,
                None,
                10_000,
            ))
        });
    });
    group.bench_function("locality/32massive/sli-2/16p", |b| {
        b.iter(|| {
            black_box(run_machine(
                &massive,
                16,
                Distribution::sli(2),
                CacheKind::PaperL1,
                None,
                10_000,
            ))
        });
    });
    group.finish();

    println!("\nFigure 6 texel/fragment at 16 processors (bench scale):");
    for (name, s) in [("teapot.full", &teapot), ("32massive11255", &massive)] {
        for dist in [Distribution::block(16), Distribution::sli(2)] {
            let r = run_machine(s, 16, dist.clone(), CacheKind::PaperL1, None, 10_000);
            println!("  {name:<16} {:<9} {:.3}", dist.label(), r.texel_to_fragment());
        }
        let r1 = run_machine(s, 1, Distribution::block(16), CacheKind::PaperL1, None, 10_000);
        println!("  {name:<16} 1-proc    {:.3}", r1.texel_to_fragment());
    }
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
