//! Per-node timing: scan engine + texture bus + prefetch window.
//!
//! The model follows Section 3.1 of the paper:
//!
//! * the engine scans **one pixel per cycle**;
//! * every triangle occupies the engine for at least
//!   [`SETUP_CYCLES`](crate::SETUP_CYCLES) cycles;
//! * cache misses queue **line fills** on the node's private bus, each
//!   occupying it for [`BusConfig::line_cost`] cycles;
//! * "the cache access is pipelined enough to absorb all the memory
//!   latency": an Igehy-style fragment FIFO lets the engine run ahead of
//!   outstanding fills, so the engine stalls only when it is more than a
//!   *prefetch window* of fragments ahead — i.e. only when the bus is
//!   genuinely saturated. This is why bursts of misses hurt even when the
//!   *average* bandwidth fits the bus (Section 6, last paragraph).

use crate::bus::BusConfig;
use crate::dram::{DramConfig, DramState};
use crate::Cycle;
use sortmid_observe::{NullSink, TraceEvent, TraceSink};

/// Ring buffer of in-flight fragment completion times.
#[derive(Debug, Clone)]
struct CompletionRing {
    slots: Vec<Cycle>,
    head: usize,
    len: usize,
}

impl CompletionRing {
    fn new(capacity: usize) -> Self {
        CompletionRing {
            slots: vec![0; capacity],
            head: 0,
            len: 0,
        }
    }

    fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// The completion time of the oldest in-flight fragment.
    fn oldest(&self) -> Cycle {
        debug_assert!(self.len > 0);
        self.slots[self.head]
    }

    #[inline]
    fn pop(&mut self) {
        debug_assert!(self.len > 0);
        self.head += 1;
        if self.head == self.slots.len() {
            self.head = 0;
        }
        self.len -= 1;
    }

    #[inline]
    fn push(&mut self, completion: Cycle) {
        debug_assert!(!self.is_full());
        let mut tail = self.head + self.len;
        if tail >= self.slots.len() {
            tail -= self.slots.len();
        }
        self.slots[tail] = completion;
        self.len += 1;
    }

    fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

/// The cycle-level timing state of one texture-mapping node.
///
/// Drive it triangle by triangle:
///
/// 1. [`start_triangle`](Self::start_triangle) with the triangle's arrival
///    time (it cannot start before the FIFO delivered it);
/// 2. [`fragment`](Self::fragment) once per fragment, passing how many of
///    its 8 texel reads missed the cache;
/// 3. [`finish_triangle`](Self::finish_triangle) with the minimum occupancy
///    (25 cycles), which returns when the engine becomes free.
///
/// [`finish_time`](Self::finish_time) is when the node's last pixel is
/// actually complete (its fills may outlive the engine's scan).
///
/// # Examples
///
/// ```
/// use sortmid_memsys::{BusConfig, EngineTiming};
///
/// let mut node = EngineTiming::new(BusConfig::ratio(1.0), Some(32));
/// node.start_triangle(100);
/// for _ in 0..30 {
///     node.fragment(0);
/// }
/// let engine_free = node.finish_triangle(25);
/// assert_eq!(engine_free, 130); // 30 pixels > 25-cycle setup floor
/// ```
#[derive(Debug, Clone)]
pub struct EngineTiming {
    line_cost: Cycle,
    dram: Option<(DramConfig, DramState)>,
    engine_t: Cycle,
    bus_free: Cycle,
    window: Option<CompletionRing>,
    tri_start: Cycle,
    last_completion: Cycle,
    busy_cycles: u64,
    stall_cycles: u64,
    setup_floor_cycles: u64,
    last_setup_padding: Cycle,
    starved_cycles: u64,
    bus_busy: u64,
    fragments: u64,
    triangles: u64,
    lines_fetched: u64,
}

impl EngineTiming {
    /// Creates a node timer.
    ///
    /// `prefetch_window` is the number of fragments the engine may run ahead
    /// of outstanding line fills; `None` models an unbounded fragment FIFO
    /// (the engine never stalls, fills just complete late).
    ///
    /// # Panics
    ///
    /// Panics if `prefetch_window` is `Some(0)`.
    pub fn new(bus: BusConfig, prefetch_window: Option<usize>) -> Self {
        if let Some(w) = prefetch_window {
            assert!(w > 0, "prefetch window must hold at least one fragment");
        }
        EngineTiming {
            line_cost: bus.line_cost(),
            dram: None,
            engine_t: 0,
            bus_free: 0,
            window: prefetch_window.map(CompletionRing::new),
            tri_start: 0,
            last_completion: 0,
            busy_cycles: 0,
            stall_cycles: 0,
            setup_floor_cycles: 0,
            last_setup_padding: 0,
            starved_cycles: 0,
            bus_busy: 0,
            fragments: 0,
            triangles: 0,
            lines_fetched: 0,
        }
    }

    /// Like [`new`](Self::new) but with an SDRAM page-mode model: line
    /// fills that hit the open DRAM row cost `dram.row_hit_cost`, others
    /// `dram.row_miss_cost` (use with
    /// [`fragment_lines`](Self::fragment_lines), which sees the
    /// addresses).
    pub fn with_dram(bus: BusConfig, prefetch_window: Option<usize>, dram: DramConfig) -> Self {
        let mut engine = Self::new(bus, prefetch_window);
        engine.dram = Some((dram, DramState::new()));
        engine
    }

    /// Begins a triangle that arrived (via the FIFO) at `arrival`; returns
    /// the cycle the engine actually starts it.
    ///
    /// Any gap between the engine going idle and the arrival is *FIFO
    /// starvation*: the engine had nothing queued and waited on the
    /// geometry stage — the paper's local load imbalance, surfaced in the
    /// cycle breakdown as `starved`.
    pub fn start_triangle(&mut self, arrival: Cycle) -> Cycle {
        if arrival > self.engine_t {
            self.starved_cycles += arrival - self.engine_t;
            self.engine_t = arrival;
        }
        self.tri_start = self.engine_t;
        self.triangles += 1;
        self.engine_t
    }

    /// Scans one fragment whose texel reads produced `misses` line fills.
    #[inline]
    pub fn fragment(&mut self, misses: u32) {
        // Engine wants the next cycle; if the fragment FIFO is full it must
        // wait for the oldest in-flight fragment's fills to complete.
        let mut t = self.engine_t + 1;
        if let Some(ring) = &mut self.window {
            if ring.is_full() {
                let oldest = ring.oldest();
                if oldest > t {
                    self.stall_cycles += oldest - t;
                    t = oldest;
                }
                ring.pop();
            }
        }
        self.engine_t = t;
        self.busy_cycles += 1;
        self.fragments += 1;

        let mut done = t;
        if misses > 0 && self.line_cost > 0 {
            for _ in 0..misses {
                self.bus_free = self.bus_free.max(t) + self.line_cost;
                self.bus_busy += self.line_cost;
            }
            done = self.bus_free;
        }
        self.lines_fetched += misses as u64;
        if let Some(ring) = &mut self.window {
            ring.push(done);
        }
        if done > self.last_completion {
            self.last_completion = done;
        }
    }

    /// Scans one fragment whose texel reads missed on the given cache-line
    /// addresses. Identical to [`fragment`](Self::fragment) on a flat bus;
    /// with [`with_dram`](Self::with_dram) the per-fill cost depends on
    /// DRAM row locality of the addresses.
    #[inline]
    pub fn fragment_lines(&mut self, miss_lines: &[u32]) {
        self.fragment_lines_sink(miss_lines, 0, &mut NullSink);
    }

    /// [`fragment_lines`](Self::fragment_lines) with a [`TraceSink`]: each
    /// line fill is reported as a [`TraceEvent::BusFill`] on `node` with
    /// its exact bus slot and cost. With [`NullSink`] the event code
    /// monomorphizes away entirely — the untraced hot path is unchanged.
    #[inline]
    pub fn fragment_lines_sink<S: TraceSink>(
        &mut self,
        miss_lines: &[u32],
        node: u32,
        sink: &mut S,
    ) {
        let mut t = self.engine_t + 1;
        if let Some(ring) = &mut self.window {
            if ring.is_full() {
                let oldest = ring.oldest();
                if oldest > t {
                    self.stall_cycles += oldest - t;
                    t = oldest;
                }
                ring.pop();
            }
        }
        self.engine_t = t;
        self.busy_cycles += 1;
        self.fragments += 1;

        let mut done = t;
        match &mut self.dram {
            None => {
                if self.line_cost > 0 && !miss_lines.is_empty() {
                    for &line in miss_lines {
                        let slot = self.bus_free.max(t);
                        self.bus_free = slot + self.line_cost;
                        self.bus_busy += self.line_cost;
                        if S::ENABLED {
                            sink.record(TraceEvent::BusFill {
                                node,
                                line,
                                at: slot,
                                cost: self.line_cost,
                            });
                        }
                    }
                    done = self.bus_free;
                }
            }
            Some((config, state)) => {
                for &line in miss_lines {
                    let cost = state.fill_cost(line, config);
                    let slot = self.bus_free.max(t);
                    self.bus_free = slot + cost;
                    self.bus_busy += cost;
                    if S::ENABLED {
                        sink.record(TraceEvent::BusFill { node, line, at: slot, cost });
                    }
                }
                if !miss_lines.is_empty() {
                    done = self.bus_free;
                }
            }
        }
        self.lines_fetched += miss_lines.len() as u64;
        if let Some(ring) = &mut self.window {
            ring.push(done);
        }
        if done > self.last_completion {
            self.last_completion = done;
        }
    }

    /// Scans `n` consecutive fragments that all hit the cache — exactly
    /// equivalent to `n` calls of [`fragment`](Self::fragment)`(0)`, in
    /// bulk.
    ///
    /// A clean fragment issues at `engine_t + 1` and completes the same
    /// cycle, so the only way it can stall is an *older* in-flight fill
    /// still pending when the prefetch window is full. Every completion in
    /// the window is bounded by `max(engine_t, bus_free)`: once the bus has
    /// caught up with the scan (`bus_free <= engine_t + 1`), no queued
    /// completion can exceed any future clean fragment's issue cycle, and
    /// the whole run collapses to counter arithmetic plus rebuilding the
    /// window's trailing completion times.
    pub fn fragments_clean(&mut self, n: u64) {
        let mut remaining = n;
        if self.window.is_some() {
            // Drain per-fragment while an in-flight fill could still stall
            // the engine; each step advances `engine_t` by at least one
            // cycle, so this catches up to `bus_free` and terminates.
            while remaining > 0 && self.bus_free > self.engine_t + 1 {
                self.fragment(0);
                remaining -= 1;
            }
        }
        if remaining == 0 {
            return;
        }
        let first = self.engine_t + 1;
        self.engine_t += remaining;
        self.busy_cycles += remaining;
        self.fragments += remaining;
        if self.engine_t > self.last_completion {
            self.last_completion = self.engine_t;
        }
        let last = self.engine_t;
        if let Some(ring) = &mut self.window {
            let cap = ring.slots.len() as u64;
            if remaining >= cap {
                // Only the trailing `cap` completions survive the run.
                ring.clear();
                for completion in (last + 1 - cap)..=last {
                    ring.push(completion);
                }
            } else {
                for completion in first..=last {
                    if ring.is_full() {
                        ring.pop();
                    }
                    ring.push(completion);
                }
            }
        }
    }

    /// Ends the current triangle, enforcing the minimum engine occupancy
    /// (the 25-cycle setup floor); returns the cycle the engine is free.
    pub fn finish_triangle(&mut self, min_occupancy: Cycle) -> Cycle {
        let floor = self.tri_start + min_occupancy;
        self.last_setup_padding = 0;
        if self.engine_t < floor {
            let padding = floor - self.engine_t;
            self.busy_cycles += padding;
            self.setup_floor_cycles += padding;
            self.last_setup_padding = padding;
            self.engine_t = floor;
        }
        self.engine_t
    }

    /// Setup-floor padding added by the most recent
    /// [`finish_triangle`](Self::finish_triangle) (0 when the scan covered
    /// the floor). The spatial attribution layer reads this to charge the
    /// padding to the triangle's screen tile.
    pub fn last_setup_padding(&self) -> Cycle {
        self.last_setup_padding
    }

    /// The cycle the engine becomes free (scan side only).
    pub fn engine_free(&self) -> Cycle {
        self.engine_t
    }

    /// The cycle the node's last fragment is fully complete (including its
    /// outstanding line fills).
    pub fn finish_time(&self) -> Cycle {
        self.engine_t.max(self.last_completion)
    }

    /// Cycles the engine spent scanning or in the setup floor.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Cycles the engine stalled waiting for the bus (prefetch window full).
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Cycles spent padding the per-triangle setup floor (a subset of
    /// [`busy_cycles`](Self::busy_cycles)).
    pub fn setup_floor_cycles(&self) -> u64 {
        self.setup_floor_cycles
    }

    /// Cycles the engine sat idle with an empty FIFO waiting for the next
    /// triangle to arrive.
    pub fn starved_cycles(&self) -> u64 {
        self.starved_cycles
    }

    /// Cycles between the engine's last scan and the last fill completing
    /// (the fill tail).
    pub fn fill_tail_cycles(&self) -> u64 {
        self.finish_time() - self.engine_t
    }

    /// Fragments scanned.
    pub fn fragments(&self) -> u64 {
        self.fragments
    }

    /// Triangles started.
    pub fn triangles(&self) -> u64 {
        self.triangles
    }

    /// Cache lines fetched over the bus.
    pub fn lines_fetched(&self) -> u64 {
        self.lines_fetched
    }

    /// Cycles the texture bus spent transferring lines (occupancy; compare
    /// against [`finish_time`](Self::finish_time) for utilisation).
    pub fn bus_busy_cycles(&self) -> u64 {
        self.bus_busy
    }

    /// DRAM row hits/misses, when the page-mode model is active.
    pub fn dram_rows(&self) -> Option<(u64, u64)> {
        self.dram.as_ref().map(|(_, s)| (s.row_hits(), s.row_misses()))
    }

    /// Resets all timing state and counters (the DRAM row also closes).
    pub fn reset(&mut self) {
        let line_cost = self.line_cost;
        let window_cap = self.window.as_ref().map(|r| r.slots.len());
        let dram = self.dram.as_ref().map(|(c, _)| (*c, DramState::new()));
        *self = EngineTiming {
            line_cost,
            dram,
            engine_t: 0,
            bus_free: 0,
            window: None,
            tri_start: 0,
            last_completion: 0,
            busy_cycles: 0,
            stall_cycles: 0,
            setup_floor_cycles: 0,
            last_setup_padding: 0,
            starved_cycles: 0,
            bus_busy: 0,
            fragments: 0,
            triangles: 0,
            lines_fetched: 0,
        };
        self.window = window_cap.map(CompletionRing::new);
    }

    #[cfg(test)]
    fn window_len(&self) -> usize {
        self.window.as_ref().map_or(0, |r| r.len)
    }
}

/// Clears a completion ring (test helper surface kept crate-private).
#[allow(dead_code)]
fn clear_ring(ring: &mut CompletionRing) {
    ring.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(ratio: f64, window: Option<usize>) -> EngineTiming {
        EngineTiming::new(BusConfig::ratio(ratio), window)
    }

    #[test]
    fn all_hit_triangle_takes_one_cycle_per_pixel() {
        let mut n = node(1.0, Some(32));
        n.start_triangle(0);
        for _ in 0..100 {
            n.fragment(0);
        }
        assert_eq!(n.finish_triangle(25), 100);
        assert_eq!(n.finish_time(), 100);
        assert_eq!(n.fragments(), 100);
        assert_eq!(n.stall_cycles(), 0);
    }

    #[test]
    fn setup_floor_applies_to_small_triangles() {
        let mut n = node(1.0, Some(32));
        n.start_triangle(0);
        for _ in 0..5 {
            n.fragment(0);
        }
        assert_eq!(n.finish_triangle(25), 25);
        // A second small triangle starts after the floor.
        n.start_triangle(0);
        n.fragment(0);
        assert_eq!(n.finish_triangle(25), 50);
    }

    #[test]
    fn arrival_delays_start() {
        let mut n = node(1.0, Some(32));
        assert_eq!(n.start_triangle(1000), 1000);
        n.fragment(0);
        assert_eq!(n.finish_triangle(25), 1025);
    }

    #[test]
    fn misses_within_window_do_not_stall_engine() {
        let mut n = node(1.0, Some(32));
        n.start_triangle(0);
        // 10 fragments, 1 miss each: bus needs 160 cycles, engine only 10,
        // but the 32-deep window absorbs the run-ahead.
        for _ in 0..10 {
            n.fragment(1);
        }
        assert_eq!(n.engine_free(), 10);
        // First fragment issues at cycle 1; ten serialized fills follow.
        assert_eq!(n.finish_time(), 1 + 10 * 16, "fills keep the bus busy");
        assert_eq!(n.stall_cycles(), 0);
        assert_eq!(n.lines_fetched(), 10);
        assert_eq!(n.bus_busy_cycles(), 160);
    }

    #[test]
    fn saturated_bus_stalls_engine_beyond_window() {
        let mut n = node(1.0, Some(4));
        n.start_triangle(0);
        // Every fragment misses once: steady state is bus-bound at 16
        // cycles per fragment once the 4-deep window fills.
        for _ in 0..20 {
            n.fragment(1);
        }
        let t = n.finish_time();
        assert!(t >= 20 * 16, "bus-bound time, got {t}");
        assert!(n.stall_cycles() > 0);
    }

    #[test]
    fn wider_bus_is_never_slower() {
        for window in [Some(4usize), Some(32), None] {
            let mut slow = node(1.0, window);
            let mut fast = node(2.0, window);
            for n in [&mut slow, &mut fast] {
                n.start_triangle(0);
                for i in 0..200 {
                    n.fragment(if i % 3 == 0 { 2 } else { 0 });
                }
                n.finish_triangle(25);
            }
            assert!(fast.finish_time() <= slow.finish_time());
        }
    }

    #[test]
    fn unbounded_window_never_stalls() {
        let mut n = node(1.0, None);
        n.start_triangle(0);
        for _ in 0..100 {
            n.fragment(8);
        }
        assert_eq!(n.engine_free(), 100);
        assert_eq!(n.stall_cycles(), 0);
        assert_eq!(n.finish_time(), 1 + 100 * 8 * 16);
    }

    #[test]
    fn infinite_bus_makes_misses_free() {
        let mut n = EngineTiming::new(BusConfig::infinite(), Some(8));
        n.start_triangle(0);
        for _ in 0..50 {
            n.fragment(8);
        }
        assert_eq!(n.finish_time(), 50);
        assert_eq!(n.lines_fetched(), 400, "fetches are counted even if free");
    }

    #[test]
    fn window_occupancy_tracks_in_flight() {
        let mut n = node(1.0, Some(4));
        n.start_triangle(0);
        n.fragment(1);
        assert_eq!(n.window_len(), 1);
        for _ in 0..4 {
            n.fragment(1);
        }
        assert_eq!(n.window_len(), 4, "ring saturates at capacity");
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut n = node(1.0, Some(4));
        n.start_triangle(10);
        n.fragment(3);
        n.finish_triangle(25);
        n.reset();
        assert_eq!(n.finish_time(), 0);
        assert_eq!(n.fragments(), 0);
        assert_eq!(n.start_triangle(0), 0);
    }

    #[test]
    fn burstiness_hurts_even_at_equal_average_bandwidth() {
        // Section 6: "as the cache misses often happen in bursts, even if
        // the average bandwidth is smaller than the bus, it may often
        // saturate". Same total misses, bursty vs spread.
        // 20 misses over 400 fragments = 320 bus cycles, well under the 400
        // engine cycles: the average fits the bus either way.
        let frags = 400;
        let misses = 20;
        let mut bursty = node(1.0, Some(8));
        bursty.start_triangle(0);
        for i in 0..frags {
            bursty.fragment(if i < misses { 1 } else { 0 });
        }
        let mut spread = node(1.0, Some(8));
        spread.start_triangle(0);
        for i in 0..frags {
            spread.fragment(if i % (frags / misses) == 0 { 1 } else { 0 });
        }
        assert_eq!(bursty.lines_fetched(), spread.lines_fetched());
        assert!(
            bursty.finish_time() > spread.finish_time(),
            "bursty {} vs spread {}",
            bursty.finish_time(),
            spread.finish_time()
        );
    }

    #[test]
    #[should_panic(expected = "at least one fragment")]
    fn zero_window_panics() {
        EngineTiming::new(BusConfig::ratio(1.0), Some(0));
    }

    #[test]
    fn starvation_counts_arrival_gaps() {
        let mut n = node(1.0, Some(8));
        n.start_triangle(100);
        n.fragment(0);
        n.finish_triangle(25);
        // Engine free at 125; next triangle arrives at 200.
        n.start_triangle(200);
        n.fragment(0);
        n.finish_triangle(25);
        assert_eq!(n.starved_cycles(), 100 + 75);
        // An already-queued triangle adds nothing.
        n.start_triangle(0);
        assert_eq!(n.starved_cycles(), 175);
    }

    #[test]
    fn setup_floor_cycles_are_a_subset_of_busy() {
        let mut n = node(1.0, Some(8));
        n.start_triangle(0);
        for _ in 0..5 {
            n.fragment(0);
        }
        n.finish_triangle(25);
        assert_eq!(n.setup_floor_cycles(), 20, "25-cycle floor minus 5 scanned");
        assert_eq!(n.busy_cycles(), 25);
        // A large triangle never pads.
        n.start_triangle(0);
        for _ in 0..40 {
            n.fragment(0);
        }
        n.finish_triangle(25);
        assert_eq!(n.setup_floor_cycles(), 20);
        assert_eq!(n.busy_cycles(), 65);
    }

    #[test]
    fn last_setup_padding_tracks_each_triangle() {
        let mut n = node(1.0, Some(8));
        n.start_triangle(0);
        for _ in 0..5 {
            n.fragment(0);
        }
        n.finish_triangle(25);
        assert_eq!(n.last_setup_padding(), 20, "padded triangle");
        n.start_triangle(0);
        for _ in 0..40 {
            n.fragment(0);
        }
        n.finish_triangle(25);
        assert_eq!(n.last_setup_padding(), 0, "big triangle covers the floor");
        n.reset();
        assert_eq!(n.last_setup_padding(), 0);
    }

    #[test]
    fn engine_time_is_fully_attributed() {
        // engine_free == busy (scan + setup floor) + stall + starved, and
        // finish_time adds only the fill tail: the breakdown identity the
        // observe crate builds on.
        let mut n = node(0.5, Some(4));
        let mut arrival = 0;
        for tri in 0..6u64 {
            arrival += tri * 37;
            n.start_triangle(arrival);
            for i in 0..(tri * 11 % 30) {
                n.fragment(if i % 4 == 0 { 2 } else { 0 });
            }
            n.finish_triangle(25);
        }
        assert_eq!(
            n.engine_free(),
            n.busy_cycles() + n.stall_cycles() + n.starved_cycles()
        );
        assert_eq!(
            n.finish_time(),
            n.engine_free() + n.fill_tail_cycles()
        );
    }

    #[test]
    fn bulk_clean_fragments_match_singles() {
        // fragments_clean(n) must be indistinguishable from n calls of
        // fragment(0), interleaved with missing fragments that load the
        // bus and the prefetch window — including runs shorter than,
        // equal to and longer than the window.
        for window in [Some(2usize), Some(4), Some(32), None] {
            for ratio in [0.25, 1.0] {
                let mut bulk = node(ratio, window);
                let mut single = node(ratio, window);
                for n in [&mut bulk, &mut single] {
                    n.start_triangle(0);
                }
                let runs: [(u32, u64); 7] = [(3, 1), (0, 5), (8, 0), (2, 40), (1, 2), (0, 0), (5, 7)];
                for &(misses, clean) in &runs {
                    bulk.fragment(misses);
                    bulk.fragments_clean(clean);
                    single.fragment(misses);
                    for _ in 0..clean {
                        single.fragment(0);
                    }
                }
                // Force both windows to drain through further misses so a
                // divergent ring state would surface in the timing.
                for _ in 0..40 {
                    bulk.fragment(1);
                    single.fragment(1);
                }
                for n in [&mut bulk, &mut single] {
                    n.finish_triangle(25);
                }
                assert_eq!(bulk.finish_time(), single.finish_time(), "{window:?} {ratio}");
                assert_eq!(bulk.stall_cycles(), single.stall_cycles(), "{window:?} {ratio}");
                assert_eq!(bulk.busy_cycles(), single.busy_cycles());
                assert_eq!(bulk.fragments(), single.fragments());
                assert_eq!(bulk.lines_fetched(), single.lines_fetched());
                assert_eq!(bulk.window_len(), single.window_len());
            }
        }
    }

    #[test]
    fn bulk_clean_preserves_attribution_identity() {
        let mut n = node(0.5, Some(4));
        n.start_triangle(10);
        n.fragment(3);
        n.fragments_clean(100);
        n.fragment(2);
        n.finish_triangle(25);
        assert_eq!(
            n.engine_free(),
            n.busy_cycles() + n.stall_cycles() + n.starved_cycles()
        );
    }

    #[test]
    fn traced_fills_match_untraced_timing() {
        use sortmid_observe::TraceRecorder;

        let lines: Vec<Vec<u32>> = (0..40)
            .map(|i| (0..(i % 3)).map(|j| (i * 7 + j) as u32).collect())
            .collect();

        let mut plain = node(1.0, Some(8));
        plain.start_triangle(0);
        for l in &lines {
            plain.fragment_lines(l);
        }
        plain.finish_triangle(25);

        let mut rec = TraceRecorder::new();
        let mut traced = node(1.0, Some(8));
        traced.start_triangle(0);
        for l in &lines {
            traced.fragment_lines_sink(l, 3, &mut rec);
        }
        traced.finish_triangle(25);

        assert_eq!(plain.finish_time(), traced.finish_time());
        assert_eq!(plain.stall_cycles(), traced.stall_cycles());
        let (.., fills) = rec.counts();
        assert_eq!(fills, traced.lines_fetched());
        // Fill spans tile the bus exactly: total span length == bus_busy.
        let span_total: u64 = rec.bus_spans(3).iter().map(|(s, e)| e - s).sum();
        assert_eq!(span_total, traced.bus_busy_cycles());
    }
}
