//! Ablation benches: design choices DESIGN.md calls out.
//!
//! * prefetch window depth (how much run-ahead "hides latency"),
//! * dynamic SLI vs static distributions,
//! * two-level cache hierarchies,
//! * cache geometry around the Hakura-Gupta point.

use sortmid::{dynamic, work, CacheKind, Distribution, Machine, MachineConfig};
use sortmid_bench::{run_machine, stream};
use sortmid_cache::CacheGeometry;
use sortmid_devharness::Suite;
use sortmid_scene::Benchmark;
use std::hint::black_box;

fn bench_prefetch(suite: &mut Suite) {
    let s = stream(Benchmark::Massive32_11255);
    for window in [Some(1usize), Some(32), None] {
        let label = window.map_or("unbounded".to_string(), |w| w.to_string());
        suite.bench(&format!("prefetch/window-{label}"), || {
            let mut cfg = MachineConfig::builder();
            cfg.processors(16)
                .distribution(Distribution::block(16))
                .cache(CacheKind::PaperL1)
                .bus_ratio(1.0);
            cfg.prefetch_window(window);
            black_box(Machine::new(cfg.build().unwrap()).run(&s))
        });
    }

    println!("\nPrefetch-window ablation (32massive11255, 16p, block-16, 1x bus):");
    for window in [Some(1usize), Some(4), Some(32), None] {
        let mut cfg = MachineConfig::builder();
        cfg.processors(16)
            .distribution(Distribution::block(16))
            .cache(CacheKind::PaperL1)
            .bus_ratio(1.0)
            .prefetch_window(window);
        let r = Machine::new(cfg.build().unwrap()).run(&s);
        println!(
            "  window {:>9}: {} cycles, {} stalls",
            window.map_or("unbounded".to_string(), |w| w.to_string()),
            r.total_cycles(),
            r.total_stalls()
        );
    }
}

fn bench_dynamic_sli(suite: &mut Suite) {
    let s = stream(Benchmark::Room3);
    suite.bench("dynamic-sli/profile+build+run/16p", || {
        let dist = dynamic::balanced_sli_for(&s, 16, 4);
        black_box(run_machine(&s, 16, dist, CacheKind::PaperL1, Some(1.0), 10_000))
    });

    let procs = 16;
    let band = Distribution::sli((s.screen().height() / (4 * procs)).max(1));
    let dynamic_dist = dynamic::balanced_sli_for(&s, procs, 4);
    println!("\nDynamic-SLI ablation (room3, {procs}p):");
    println!("  static bands : {:.1}% imbalance", work::pixel_imbalance(&s, &band, procs));
    println!("  dynamic bands: {:.1}% imbalance", work::pixel_imbalance(&s, &dynamic_dist, procs));
}

fn bench_l2(suite: &mut Suite) {
    let s = stream(Benchmark::TeapotFull);
    suite.bench("l2/two-level/16p", || {
        black_box(run_machine(
            &s,
            16,
            Distribution::block(16),
            CacheKind::TwoLevel(CacheGeometry::paper_l1(), CacheGeometry::paper_l2()),
            None,
            10_000,
        ))
    });

    let l1 = run_machine(&s, 16, Distribution::block(16), CacheKind::PaperL1, None, 10_000);
    let l2 = run_machine(
        &s,
        16,
        Distribution::block(16),
        CacheKind::TwoLevel(CacheGeometry::paper_l1(), CacheGeometry::paper_l2()),
        None,
        10_000,
    );
    println!(
        "\nL2 ablation (teapot.full, 16p): L1-only t/f {:.3} vs L1+L2 t/f {:.3}",
        l1.texel_to_fragment(),
        l2.texel_to_fragment()
    );
}

fn bench_cache_geometry(suite: &mut Suite) {
    let s = stream(Benchmark::Massive32_11255);
    for (label, size_kb, ways) in
        [("4KB-1way", 4u32, 1u32), ("16KB-4way", 16, 4), ("64KB-8way", 64, 8)]
    {
        let g = CacheGeometry::new(size_kb * 1024, ways, 64).unwrap();
        suite.bench(&format!("cache-geometry/{label}"), || {
            black_box(run_machine(
                &s,
                16,
                Distribution::block(16),
                CacheKind::SetAssoc(g),
                None,
                10_000,
            ))
        });
    }
}

fn bench_sort_last(suite: &mut Suite) {
    use sortmid::sortlast::{run_sort_last, TriangleAssignment};

    let s = stream(Benchmark::Massive32_11255);
    let config = {
        let mut b = MachineConfig::builder();
        b.processors(16).cache(CacheKind::PaperL1).bus_ratio(1.0);
        b.build().unwrap()
    };
    suite.bench("sort-last/round-robin/16p", || {
        black_box(run_sort_last(&s, &config, TriangleAssignment::RoundRobin))
    });

    let sm = run_machine(&s, 16, Distribution::block(16), CacheKind::PaperL1, Some(1.0), 10_000);
    let sl = run_sort_last(&s, &config, TriangleAssignment::RoundRobin);
    println!(
        "\nSort-middle vs sort-last (16p, bench scale): {} vs {} cycles (texture stage only)",
        sm.total_cycles(),
        sl.total_cycles()
    );
}

fn main() {
    let mut suite = Suite::new("ablations");
    bench_prefetch(&mut suite);
    bench_dynamic_sli(&mut suite);
    bench_l2(&mut suite);
    bench_cache_geometry(&mut suite);
    bench_sort_last(&mut suite);
    suite.finish();
}
