//! A deterministic discrete-event queue.
//!
//! The general-purpose piece of the substrate (the ASF role): events are
//! delivered in time order, and events scheduled for the same cycle are
//! delivered in scheduling order (FIFO), which keeps simulations
//! deterministic regardless of heap internals.

use crate::Cycle;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, then FIFO.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use sortmid_memsys::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(10, "later");
/// q.schedule(5, "sooner");
/// q.schedule(5, "sooner-but-second");
/// assert_eq!(q.pop(), Some((5, "sooner")));
/// assert_eq!(q.pop(), Some((5, "sooner-but-second")));
/// assert_eq!(q.pop(), Some((10, "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Cycle,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at cycle 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
        }
    }

    /// Schedules `event` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before the current simulation time (events may
    /// not be scheduled in the past).
    pub fn schedule(&mut self, time: Cycle, event: E) {
        assert!(time >= self.now, "event scheduled in the past");
        self.heap.push(Entry {
            time,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
    }

    /// Schedules `event` `delay` cycles after the current time.
    pub fn schedule_in(&mut self, delay: Cycle, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// The current simulation time (time of the last popped event).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no event is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_ordering() {
        let mut q = EventQueue::new();
        q.schedule(30, 'c');
        q.schedule(10, 'a');
        q.schedule(20, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn fifo_among_ties() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(42, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(5, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 5);
        q.schedule_in(3, ());
        assert_eq!(q.pop(), Some((8, ())));
    }

    #[test]
    fn events_can_cascade() {
        // A popped event schedules a follow-up: the classic sim pattern.
        let mut q = EventQueue::new();
        q.schedule(1, 0u32);
        let mut delivered = Vec::new();
        while let Some((t, hop)) = q.pop() {
            delivered.push((t, hop));
            if hop < 4 {
                q.schedule_in(2, hop + 1);
            }
        }
        assert_eq!(delivered, vec![(1, 0), (3, 1), (5, 2), (7, 3), (9, 4)]);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, ());
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }
}
