//! Figure 6 bench: texel-to-fragment ratio under infinite bus bandwidth.

use sortmid::{CacheKind, Distribution};
use sortmid_bench::{run_machine, stream};
use sortmid_devharness::Suite;
use sortmid_scene::Benchmark;
use std::hint::black_box;

fn main() {
    let teapot = stream(Benchmark::TeapotFull);
    let massive = stream(Benchmark::Massive32_11255);
    let mut suite = Suite::new("fig6");

    suite.bench_with_elements("locality/teapot/block-16/16p", teapot.fragment_count(), || {
        black_box(run_machine(
            &teapot,
            16,
            Distribution::block(16),
            CacheKind::PaperL1,
            None,
            10_000,
        ))
    });
    suite.bench_with_elements(
        "locality/32massive/sli-2/16p",
        massive.fragment_count(),
        || {
            black_box(run_machine(
                &massive,
                16,
                Distribution::sli(2),
                CacheKind::PaperL1,
                None,
                10_000,
            ))
        },
    );

    println!("\nFigure 6 texel/fragment at 16 processors (bench scale):");
    for (name, s) in [("teapot.full", &teapot), ("32massive11255", &massive)] {
        for dist in [Distribution::block(16), Distribution::sli(2)] {
            let r = run_machine(s, 16, dist.clone(), CacheKind::PaperL1, None, 10_000);
            println!("  {name:<16} {:<9} {:.3}", dist.label(), r.texel_to_fragment());
        }
        let r1 = run_machine(s, 1, Distribution::block(16), CacheKind::PaperL1, None, 10_000);
        println!("  {name:<16} 1-proc    {:.3}", r1.texel_to_fragment());
    }

    suite.finish();
}
