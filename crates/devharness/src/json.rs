//! Minimal JSON document model for the bench writer.
//!
//! Only what `BENCH_<name>.json` needs: objects, arrays, strings, integers
//! and floats, rendered with deterministic key order (insertion order) so
//! diffs between PRs stay readable.

use std::fmt::Write as _;

/// A JSON value.
///
/// # Examples
///
/// ```
/// use sortmid_devharness::json::Json;
///
/// let doc = Json::obj([
///     ("name", Json::str("fig5")),
///     ("samples", Json::arr([Json::U64(3), Json::U64(4)])),
/// ]);
/// assert_eq!(doc.render(), r#"{"name":"fig5","samples":[3,4]}"#);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer, rendered exactly (no float rounding).
    U64(u64),
    /// A float, rendered via Rust's shortest-roundtrip formatting.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An array from any iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// An object from `(key, value)` pairs, keeping their order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Renders the document as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                // JSON has no NaN/Infinity; clamp to null like serde_json.
                if x.is_finite() {
                    let mut s = String::new();
                    let _ = write!(s, "{x}");
                    // "2" would read back as an integer; keep floats floats.
                    if !s.contains(['.', 'e', 'E']) {
                        s.push_str(".0");
                    }
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(18_446_744_073_709_551_615).render(), "18446744073709551615");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(Json::F64(2.0).render(), "2.0");
        assert_eq!(Json::F64(-3.0).render(), "-3.0");
        assert_eq!(Json::F64(0.0).render(), "0.0");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn nesting_renders_in_order() {
        let doc = Json::obj([
            ("b", Json::U64(1)),
            ("a", Json::arr([Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(doc.render(), r#"{"b":1,"a":[null,false]}"#);
    }
}
