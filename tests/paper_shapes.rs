//! Shape tests: the paper's qualitative conclusions must hold in the
//! reproduction. These mirror EXPERIMENTS.md's success criteria.

use sortmid::{work, CacheKind, Distribution, Machine, MachineConfig, RunReport};
use sortmid_raster::FragmentStream;
use sortmid_scene::{Benchmark, SceneBuilder};

const SCALE: f64 = 0.2;

fn stream(b: Benchmark) -> FragmentStream {
    SceneBuilder::benchmark(b).scale(SCALE).build().rasterize()
}

fn run(
    stream: &FragmentStream,
    procs: u32,
    dist: Distribution,
    cache: CacheKind,
    ratio: f64,
    buffer: usize,
) -> RunReport {
    Machine::new(
        MachineConfig::builder()
            .processors(procs)
            .distribution(dist)
            .cache(cache)
            .bus_ratio(ratio)
            .triangle_buffer(buffer)
            .build()
            .expect("valid"),
    )
    .run(stream)
}

fn best_block(stream: &FragmentStream, procs: u32, baseline: &RunReport) -> (u32, f64) {
    [4u32, 8, 16, 32, 64, 128]
        .iter()
        .map(|&w| {
            let r = run(stream, procs, Distribution::block(w), CacheKind::PaperL1, 1.0, 10_000);
            (w, r.speedup_vs(baseline))
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty")
}

fn best_sli(stream: &FragmentStream, procs: u32, baseline: &RunReport) -> (u32, f64) {
    [1u32, 2, 4, 8, 16, 32]
        .iter()
        .map(|&l| {
            let r = run(stream, procs, Distribution::sli(l), CacheKind::PaperL1, 1.0, 10_000);
            (l, r.speedup_vs(baseline))
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty")
}

/// Paper conclusion (i): both distributions reach similar peaks below 16
/// processors, square block wins at 64.
#[test]
fn block_wins_at_64_processors_ties_below() {
    let s = stream(Benchmark::Truc640);
    let baseline = run(&s, 1, Distribution::block(16), CacheKind::PaperL1, 1.0, 10_000);

    let (_, block16) = best_block(&s, 16, &baseline);
    let (_, sli16) = best_sli(&s, 16, &baseline);
    let tie = (block16 - sli16).abs() / block16.max(sli16);
    assert!(tie < 0.15, "16p should be close: block {block16:.2} vs sli {sli16:.2}");

    let (_, block64) = best_block(&s, 64, &baseline);
    let (_, sli64) = best_sli(&s, 64, &baseline);
    assert!(
        block64 > sli64,
        "64p: block ({block64:.2}) must beat SLI ({sli64:.2})"
    );
}

/// Paper conclusion (ii): the best block width is ~16 regardless of the
/// processor count, while the best SLI group size shrinks as the machine
/// grows — SLI is unsuitable for a fixed-parameter scalable chip.
#[test]
fn best_block_is_stable_best_sli_shrinks() {
    // This shape needs enough tiles per processor to be meaningful at
    // width 16 and 64 processors, so it runs at a larger scale than the
    // other tests.
    let s = SceneBuilder::benchmark(Benchmark::Massive32_11255)
        .scale(0.3)
        .build()
        .rasterize();
    let baseline = run(&s, 1, Distribution::block(16), CacheKind::PaperL1, 1.0, 10_000);

    // At 64 processors the optimum is sharp and sits near 16; at low
    // processor counts the curve is broad (the paper's 4p panels are nearly
    // flat), so the operative claim is that width 16 stays near-optimal at
    // *every* machine size — no retuning needed.
    let (w64, _) = best_block(&s, 64, &baseline);
    assert!(
        (8..=32).contains(&w64),
        "best width at 64p should hover near 16: {w64}"
    );
    for procs in [4u32, 16, 64] {
        let (_, best) = best_block(&s, procs, &baseline);
        let at16 = run(&s, procs, Distribution::block(16), CacheKind::PaperL1, 1.0, 10_000)
            .speedup_vs(&baseline);
        assert!(
            at16 >= 0.9 * best,
            "{procs}p: width 16 ({at16:.2}) should be within 10% of the best ({best:.2})"
        );
    }

    let (l4, _) = best_sli(&s, 4, &baseline);
    let (l64, _) = best_sli(&s, 64, &baseline);
    assert!(
        l64 < l4,
        "best SLI group must shrink with processor count: {l4} at 4p vs {l64} at 64p"
    );
}

/// Figure 5's worst case: SLI-32 at 64 processors shows severe imbalance,
/// far beyond block-16's.
#[test]
fn sli32_is_the_imbalance_worst_case() {
    let s = stream(Benchmark::Quake);
    let sli32 = work::pixel_imbalance(&s, &Distribution::sli(32), 64);
    let block16 = work::pixel_imbalance(&s, &Distribution::block(16), 64);
    assert!(
        sli32 > 3.0 * block16,
        "sli-32 ({sli32:.0}%) should dwarf block-16 ({block16:.0}%)"
    );
    assert!(sli32 > 100.0, "sli-32 imbalance should be severe: {sli32:.0}%");
}

/// Figure 6's second observation: with big-enough blocks, splitting the
/// frame over many caches *relieves* per-node capacity pressure — scenes
/// whose working set is heavily reused stop degrading (teapot.full even
/// improves), and small-dataset scenes (blowout775) degrade far less at
/// width 128 than at width 32. (The paper's strict monotone decrease for
/// blowout needs its longer-range texture reuse; see EXPERIMENTS.md.)
#[test]
fn small_datasets_benefit_from_replication() {
    // teapot.full, width 128: 64 caches beat one cache outright.
    let teapot = stream(Benchmark::TeapotFull);
    let one = run(&teapot, 1, Distribution::block(128), CacheKind::PaperL1, 1.0, 10_000);
    let many = run(&teapot, 64, Distribution::block(128), CacheKind::PaperL1, 1.0, 10_000);
    assert!(
        many.texel_to_fragment() <= 1.05 * one.texel_to_fragment(),
        "teapot at 64p/width-128 ({:.3}) should not exceed 1p ({:.3})",
        many.texel_to_fragment(),
        one.texel_to_fragment()
    );

    // blowout775: the 64p degradation shrinks dramatically as blocks grow.
    let blowout = stream(Benchmark::Blowout775);
    let ratio_at = |width: u32, procs: u32| {
        run(&blowout, procs, Distribution::block(width), CacheKind::PaperL1, 1.0, 10_000)
            .texel_to_fragment()
    };
    let growth_32 = ratio_at(32, 64) / ratio_at(32, 1).max(1e-6);
    let growth_128 = ratio_at(128, 64) / ratio_at(128, 1).max(1e-6);
    assert!(
        growth_128 < 0.5 * growth_32,
        "width 128 growth ({growth_128:.1}x) should be far below width 32 ({growth_32:.1}x)"
    );
}

/// Section 8: ~500-entry buffers recover the ideal-buffer performance;
/// 20-entry buffers lose a lot and shift the best width downward.
#[test]
fn buffer_500_matches_ideal_and_small_buffers_shift_best_width() {
    let s = stream(Benchmark::Truc640);
    let widths = [2u32, 4, 8, 16, 32];
    let speedup_at = |width: u32, buffer: usize| {
        run(&s, 64, Distribution::block(width), CacheKind::PaperL1, 2.0, buffer).total_cycles()
    };

    // 500 entries within 5 % of the 10000-entry machine at width 16.
    let t500 = speedup_at(16, 500) as f64;
    let tideal = speedup_at(16, 10_000) as f64;
    assert!(
        (t500 - tideal) / tideal < 0.05,
        "500-entry buffer should match ideal: {t500} vs {tideal}"
    );

    // Best width with a 5-entry buffer is smaller than with the ideal one.
    let best = |buffer: usize| {
        widths
            .iter()
            .map(|&w| (w, speedup_at(w, buffer)))
            .min_by_key(|&(_, t)| t)
            .expect("non-empty")
            .0
    };
    let tiny = best(5);
    let ideal = best(10_000);
    assert!(
        tiny < ideal,
        "small buffer should shrink the best width: {tiny} vs {ideal}"
    );
}

/// The locality trend of Figure 6 holds across texture-heavy scenes: the
/// texel-to-fragment ratio rises monotonically-ish as tiles shrink.
#[test]
fn texel_traffic_rises_as_tiles_shrink() {
    for b in [Benchmark::TeapotFull, Benchmark::Room3] {
        let s = stream(b);
        let ratios: Vec<f64> = [128u32, 32, 8, 4]
            .iter()
            .map(|&w| {
                run(&s, 16, Distribution::block(w), CacheKind::PaperL1, 1.0, 10_000)
                    .texel_to_fragment()
            })
            .collect();
        for pair in ratios.windows(2) {
            assert!(
                pair[1] >= pair[0] * 0.95,
                "{b}: ratio should rise as blocks shrink: {ratios:?}"
            );
        }
        assert!(
            ratios[3] > ratios[0] * 1.3,
            "{b}: width 4 should clearly exceed width 128: {ratios:?}"
        );
    }
}

/// SLI-2 always fetches more texels than block-16 at scale (the paper's
/// direct comparison of the two "good load balance" configurations).
#[test]
fn sli2_fetches_more_than_block16() {
    for b in [Benchmark::TeapotFull, Benchmark::Massive32_11255] {
        let s = stream(b);
        let block = run(&s, 64, Distribution::block(16), CacheKind::PaperL1, 1.0, 10_000);
        let sli = run(&s, 64, Distribution::sli(2), CacheKind::PaperL1, 1.0, 10_000);
        assert!(
            sli.texel_to_fragment() > block.texel_to_fragment(),
            "{b}: sli-2 {:.3} should exceed block-16 {:.3}",
            sli.texel_to_fragment(),
            block.texel_to_fragment()
        );
    }
}
