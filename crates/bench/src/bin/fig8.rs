//! Figure 8 bench: triangle-buffer size effect.

use sortmid::{CacheKind, Distribution};
use sortmid_bench::{run_machine, stream};
use sortmid_devharness::Suite;
use sortmid_scene::Benchmark;
use std::hint::black_box;

fn main() {
    let s = stream(Benchmark::Truc640);
    let mut suite = Suite::new("fig8");

    for buffer in [20usize, 500, 10_000] {
        suite.bench_with_elements(
            &format!("buffer-{buffer}/block-16/64p"),
            s.fragment_count(),
            || {
                black_box(run_machine(
                    &s,
                    64,
                    Distribution::block(16),
                    CacheKind::PaperL1,
                    Some(2.0),
                    buffer,
                ))
            },
        );
    }

    let base = run_machine(&s, 1, Distribution::block(16), CacheKind::PaperL1, Some(2.0), 10_000);
    println!("\nFigure 8 speedups (truc640, 64p, block-16, 2 texel/pixel, bench scale):");
    for buffer in [1usize, 5, 10, 20, 50, 100, 500, 10_000] {
        let r = run_machine(&s, 64, Distribution::block(16), CacheKind::PaperL1, Some(2.0), buffer);
        println!("  buffer {buffer:>6}: {:.2}x", r.speedup_vs(&base));
    }

    suite.finish();
}
