//! The bounded triangle FIFO between the geometry stage and a node.
//!
//! Section 8 of the paper: the geometry stage emits triangles in strict
//! stream order; each triangle is pushed into the FIFO of every node whose
//! region it overlaps. When any target FIFO is full the (otherwise ideal)
//! geometry stage blocks — and with it every other node starves once its own
//! FIFO drains. This head-of-line blocking is the *local load imbalance*
//! that makes small buffers expensive, especially with real caches whose
//! miss bursts make node speeds irregular.
//!
//! Because the machine simulation computes each triangle's processing start
//! as soon as it is sent, the FIFO only needs to remember the *start times*
//! of the last `capacity` triangles sent to the node: triangle *n* can only
//! be sent once triangle *n − capacity* has been dequeued (started).

use crate::Cycle;

/// Timing gate of one node's bounded triangle FIFO.
///
/// # Examples
///
/// ```
/// use sortmid_memsys::TriangleFifo;
///
/// let mut fifo = TriangleFifo::new(2);
/// assert_eq!(fifo.earliest_send(), 0);
/// fifo.record_start(10); // triangle 0 dequeued at t=10
/// fifo.record_start(30); // triangle 1 dequeued at t=30
/// // Sending triangle 2 must wait until triangle 0 left the FIFO.
/// assert_eq!(fifo.earliest_send(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct TriangleFifo {
    capacity: usize,
    /// Start (dequeue) times of the last `capacity` triangles, ring-ordered.
    /// Grows lazily up to `capacity`: a deep FIFO on a short stream never
    /// pays for (or zero-fills) slots it does not reach.
    starts: Vec<Cycle>,
    head: usize,
    len: usize,
    total_sent: u64,
}

impl TriangleFifo {
    /// Creates a FIFO gate with room for `capacity` triangles.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "triangle FIFO needs at least one entry");
        TriangleFifo {
            capacity,
            starts: Vec::new(),
            head: 0,
            len: 0,
            total_sent: 0,
        }
    }

    /// The FIFO's capacity in triangles.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Earliest cycle at which the geometry stage may send the *next*
    /// triangle to this node: immediately if fewer than `capacity`
    /// triangles are pending, otherwise when the oldest pending triangle is
    /// dequeued.
    pub fn earliest_send(&self) -> Cycle {
        if self.len < self.capacity {
            0
        } else {
            self.starts[self.head]
        }
    }

    /// Records that the triangle just sent will be dequeued (start
    /// processing) at `start`; called right after the send decision, since
    /// the machine computes start times eagerly.
    pub fn record_start(&mut self, start: Cycle) {
        if self.len == self.capacity {
            // Full: the oldest entry leaves and the new one takes its slot
            // (single-step ring advance — no modulo on the hot path).
            self.starts[self.head] = start;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
        } else {
            let mut tail = self.head + self.len;
            if tail >= self.capacity {
                tail -= self.capacity;
            }
            if tail == self.starts.len() {
                self.starts.push(start);
            } else {
                self.starts[tail] = start;
            }
            self.len += 1;
        }
        self.total_sent += 1;
    }

    /// Total triangles ever sent through this FIFO.
    pub fn total_sent(&self) -> u64 {
        self.total_sent
    }

    /// Clears the gate.
    pub fn reset(&mut self) {
        self.head = 0;
        self.len = 0;
        self.total_sent = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_until_full() {
        let mut f = TriangleFifo::new(3);
        assert_eq!(f.earliest_send(), 0);
        f.record_start(5);
        f.record_start(9);
        assert_eq!(f.earliest_send(), 0, "two pending out of three");
        f.record_start(12);
        assert_eq!(f.earliest_send(), 5, "full: wait for oldest dequeue");
    }

    #[test]
    fn sliding_window_follows_oldest() {
        let mut f = TriangleFifo::new(2);
        f.record_start(10);
        f.record_start(20);
        assert_eq!(f.earliest_send(), 10);
        f.record_start(30); // evicts the t=10 entry
        assert_eq!(f.earliest_send(), 20);
        f.record_start(40);
        assert_eq!(f.earliest_send(), 30);
        assert_eq!(f.total_sent(), 4);
    }

    #[test]
    fn capacity_one_serialises() {
        let mut f = TriangleFifo::new(1);
        assert_eq!(f.earliest_send(), 0);
        f.record_start(7);
        assert_eq!(f.earliest_send(), 7);
        f.record_start(11);
        assert_eq!(f.earliest_send(), 11);
    }

    #[test]
    fn deep_fifo_rarely_constrains() {
        let mut f = TriangleFifo::new(10_000);
        for t in 0..5_000 {
            f.record_start(t);
            assert_eq!(f.earliest_send(), 0);
        }
    }

    #[test]
    fn reset_clears() {
        let mut f = TriangleFifo::new(2);
        f.record_start(1);
        f.record_start(2);
        f.reset();
        assert_eq!(f.earliest_send(), 0);
        assert_eq!(f.total_sent(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        TriangleFifo::new(0);
    }

    #[test]
    fn gate_is_monotone_under_ordered_starts() {
        use sortmid_devharness::prop::{check, Config};
        use sortmid_devharness::prop_assert;
        check(
            "gate_is_monotone_under_ordered_starts",
            &Config::default(),
            |g| {
                (
                    g.usize_in(1..32),
                    g.vec(1..100, |g| g.u64_below(50)),
                )
            },
            |(capacity, deltas)| {
                let mut fifo = TriangleFifo::new(*capacity);
                let mut t = 0u64;
                let mut last_gate = 0u64;
                for &d in deltas {
                    t += d;
                    fifo.record_start(t);
                    let gate = fifo.earliest_send();
                    prop_assert!(gate >= last_gate, "gate went backwards: {gate} < {last_gate}");
                    prop_assert!(gate <= t, "gate beyond the newest start");
                    last_gate = gate;
                }
                Ok(())
            },
        );
    }
}
