//! Seed robustness: the paper's conclusions should not depend on the
//! particular procedural scene our generator happened to produce.
//!
//! Re-runs the headline comparison (64 processors: best block width, block
//! vs SLI) across several generator seeds of the same preset and reports
//! mean ± standard deviation plus how often each width wins.

use crate::common::{machine, BLOCK_WIDTHS, SLI_LINES};
use sortmid::{CacheKind, Distribution, Machine};
use sortmid_scene::{Benchmark, SceneBuilder};
use sortmid_util::stats::Summary;
use sortmid_util::table::{fmt_f, Table};
use std::collections::BTreeMap;

/// Result of the robustness sweep.
#[derive(Debug, Clone)]
pub struct SeedStudy {
    /// Speedup of block-16 at 64p, per seed.
    pub block16: Summary,
    /// Speedup of the best SLI configuration at 64p, per seed.
    pub best_sli: Summary,
    /// How often each block width was the 64p optimum.
    pub best_width_votes: BTreeMap<u32, u32>,
    /// How often block beat SLI at 64 processors.
    pub block_wins: u32,
    /// Seeds evaluated.
    pub seeds: u32,
}

/// Runs the study on `benchmark` at `scale` over `seeds` generator seeds.
pub fn run(benchmark: Benchmark, scale: f64, seeds: u32) -> SeedStudy {
    let mut block16 = Summary::new();
    let mut best_sli_summary = Summary::new();
    let mut votes: BTreeMap<u32, u32> = BTreeMap::new();
    let mut block_wins = 0;
    for seed in 0..seeds as u64 {
        let stream = SceneBuilder::benchmark(benchmark)
            .scale(scale)
            .seed(0xBEEF + seed * 7919)
            .build()
            .rasterize();
        let baseline = Machine::new(machine(
            1,
            Distribution::block(16),
            CacheKind::PaperL1,
            Some(1.0),
            10_000,
        ))
        .run(&stream);
        let speedup = |dist: Distribution| {
            Machine::new(machine(64, dist, CacheKind::PaperL1, Some(1.0), 10_000))
                .run(&stream)
                .speedup_vs(&baseline)
        };
        let (best_w, best_block_speedup) = BLOCK_WIDTHS
            .iter()
            .map(|&w| (w, speedup(Distribution::block(w))))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty");
        let best_sli = SLI_LINES
            .iter()
            .map(|&l| speedup(Distribution::sli(l)))
            .fold(f64::NEG_INFINITY, f64::max);
        block16.push(speedup(Distribution::block(16)));
        best_sli_summary.push(best_sli);
        *votes.entry(best_w).or_insert(0) += 1;
        if best_block_speedup >= best_sli {
            block_wins += 1;
        }
    }
    SeedStudy {
        block16,
        best_sli: best_sli_summary,
        best_width_votes: votes,
        block_wins,
        seeds,
    }
}

/// Renders the study as a table.
pub fn render(study: &SeedStudy) -> Table {
    let mut t = Table::new(&["metric", "value"]);
    t.row_owned(vec!["seeds".into(), study.seeds.to_string()]);
    t.row_owned(vec![
        "block-16 speedup (64p)".into(),
        format!("{} +/- {}", fmt_f(study.block16.mean(), 2), fmt_f(study.block16.std_dev(), 2)),
    ]);
    t.row_owned(vec![
        "best SLI speedup (64p)".into(),
        format!("{} +/- {}", fmt_f(study.best_sli.mean(), 2), fmt_f(study.best_sli.std_dev(), 2)),
    ]);
    let votes: Vec<String> = study
        .best_width_votes
        .iter()
        .map(|(w, n)| format!("{w}:{n}"))
        .collect();
    t.row_owned(vec!["best width votes".into(), votes.join(" ")]);
    t.row_owned(vec![
        "block beats SLI".into(),
        format!("{}/{}", study.block_wins, study.seeds),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_shapes_are_seed_stable() {
        let study = run(Benchmark::Truc640, 0.12, 3);
        assert_eq!(study.seeds, 3);
        assert_eq!(study.block16.count(), 3);
        // The conclusion holds for a clear majority of seeds even at small
        // scale.
        assert!(study.block_wins >= 2, "block won {}/3", study.block_wins);
        // The best width never collapses to the extremes.
        for &w in study.best_width_votes.keys() {
            assert!((8..=64).contains(&w), "implausible best width {w}");
        }
        let table = render(&study);
        assert_eq!(table.len(), 5);
    }
}
