//! Scheduler determinism: the work-stealing sweep pipeline must emit
//! reports byte-identical to the sequential reference for every thread
//! count, across repeated runs (steal interleavings must not leak into
//! results), and against the static-schedule escape hatch.

use sortmid::{run_sweep_with_options, CacheKind, Distribution, SweepGrid, SweepOptions};
use sortmid_cache::CacheGeometry;
use sortmid_raster::FragmentStream;
use sortmid_scene::{Benchmark, SceneBuilder};

fn stream() -> FragmentStream {
    SceneBuilder::benchmark(Benchmark::Quake)
        .scale(0.1)
        .build()
        .rasterize()
}

/// A grid that exercises every scheduler task kind: two plan groups, a
/// replay-eligible set-associative span, captured perfect/paper-L1 pairs,
/// and a direct remainder.
fn mixed_grid() -> Vec<sortmid::MachineConfig> {
    let mut caches = vec![CacheKind::Perfect, CacheKind::PaperL1];
    for log_size in 12..16 {
        let g = CacheGeometry::new(1 << log_size, 4, 64).unwrap();
        caches.push(CacheKind::SetAssoc(g));
    }
    SweepGrid::new()
        .processors([4])
        .distributions([Distribution::block(16), Distribution::sli(2)])
        .caches(caches)
        .buffers([8, 10_000])
        .build()
}

fn options(threads: usize, static_schedule: bool) -> SweepOptions {
    SweepOptions { threads, replay: true, batch: true, static_schedule }
}

#[test]
fn work_stealing_reports_are_identical_across_thread_counts() {
    let s = stream();
    let configs = mixed_grid();
    let reference = run_sweep_with_options(&s, &configs, options(1, false));
    for threads in [2usize, 3, 8] {
        let swept = run_sweep_with_options(&s, &configs, options(threads, false));
        assert_eq!(swept, reference, "work-stealing schedule at {threads} threads");
    }
}

#[test]
fn work_stealing_reports_are_identical_across_repeated_runs() {
    // Steal interleavings differ run to run; the reports must not.
    let s = stream();
    let configs = mixed_grid();
    let reference = run_sweep_with_options(&s, &configs, options(3, false));
    for round in 0..3 {
        let swept = run_sweep_with_options(&s, &configs, options(3, false));
        assert_eq!(swept, reference, "repeated work-stealing run {round}");
    }
}

#[test]
fn static_schedule_escape_hatch_matches_the_pool() {
    let s = stream();
    let configs = mixed_grid();
    let pooled = run_sweep_with_options(&s, &configs, options(3, false));
    for threads in [1usize, 3, 8] {
        let chunked = run_sweep_with_options(&s, &configs, options(threads, true));
        assert_eq!(chunked, pooled, "static schedule at {threads} threads");
    }
}

#[test]
fn scheduler_determinism_holds_on_the_escape_hatch_pipelines() {
    // The pool also schedules the --no-replay and --scalar pipelines;
    // their reports must stay schedule-independent too.
    let s = stream();
    let configs = mixed_grid();
    for (replay, batch) in [(false, true), (false, false)] {
        let opts = |threads, static_schedule| SweepOptions { threads, replay, batch, static_schedule };
        let reference = run_sweep_with_options(&s, &configs, opts(1, false));
        let pooled = run_sweep_with_options(&s, &configs, opts(3, false));
        let chunked = run_sweep_with_options(&s, &configs, opts(3, true));
        assert_eq!(pooled, reference, "pool, replay {replay} batch {batch}");
        assert_eq!(chunked, reference, "static, replay {replay} batch {batch}");
    }
}
