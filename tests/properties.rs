//! Cross-crate property tests on randomized machine configurations.

use proptest::prelude::*;
use sortmid::{CacheKind, Distribution, Machine, MachineConfig};
use sortmid_raster::FragmentStream;
use sortmid_scene::{Benchmark, SceneBuilder};
use std::sync::OnceLock;

/// One small shared stream (building scenes per proptest case is too slow).
fn stream() -> &'static FragmentStream {
    static STREAM: OnceLock<FragmentStream> = OnceLock::new();
    STREAM.get_or_init(|| {
        SceneBuilder::benchmark(Benchmark::Quake)
            .scale(0.08)
            .build()
            .rasterize()
    })
}

fn arb_distribution() -> impl Strategy<Value = Distribution> {
    prop_oneof![
        (1u32..200).prop_map(Distribution::block),
        (1u32..64).prop_map(Distribution::sli),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every fragment is drawn exactly once whatever the configuration.
    #[test]
    fn fragments_conserved(
        dist in arb_distribution(),
        procs in 1u32..96,
        buffer in prop_oneof![Just(1usize), Just(7), Just(100), Just(10_000)],
    ) {
        let s = stream();
        let config = MachineConfig::builder()
            .processors(procs)
            .distribution(dist)
            .cache(CacheKind::PaperL1)
            .bus_ratio(1.0)
            .triangle_buffer(buffer)
            .build()
            .expect("valid");
        let report = Machine::new(config).run(s);
        let drawn: u64 = report.nodes().iter().map(|n| n.pixels).sum();
        prop_assert_eq!(drawn, s.fragment_count());
    }

    /// Machine time is monotone: a bigger triangle buffer never slows the
    /// machine down.
    #[test]
    fn buffer_monotonicity(
        dist in arb_distribution(),
        procs in 2u32..64,
    ) {
        let s = stream();
        let time = |buffer: usize| {
            let config = MachineConfig::builder()
                .processors(procs)
                .distribution(dist.clone())
                .cache(CacheKind::PaperL1)
                .bus_ratio(1.0)
                .triangle_buffer(buffer)
                .build()
                .expect("valid");
            Machine::new(config).run(s).total_cycles()
        };
        let small = time(2);
        let medium = time(50);
        let large = time(10_000);
        prop_assert!(medium <= small, "50-entry ({medium}) vs 2-entry ({small})");
        prop_assert!(large <= medium, "ideal ({large}) vs 50-entry ({medium})");
    }

    /// A perfect cache is a strict lower bound on machine time, and the
    /// texel traffic of a real cache is at least the unique-line floor.
    #[test]
    fn perfect_cache_is_a_lower_bound(
        dist in arb_distribution(),
        procs in 1u32..64,
    ) {
        let s = stream();
        let run = |cache: CacheKind| {
            let config = MachineConfig::builder()
                .processors(procs)
                .distribution(dist.clone())
                .cache(cache)
                .bus_ratio(1.0)
                .build()
                .expect("valid");
            Machine::new(config).run(s)
        };
        let perfect = run(CacheKind::Perfect);
        let real = run(CacheKind::PaperL1);
        prop_assert!(perfect.total_cycles() <= real.total_cycles());
        prop_assert!(real.texel_to_fragment() >= 0.0);
    }

    /// Total routed + discarded equals (procs x live triangles): broadcast
    /// accounting never loses a primitive.
    #[test]
    fn broadcast_accounting(dist in arb_distribution(), procs in 1u32..32) {
        let s = stream();
        let live = s.triangles().iter().filter(|t| !t.is_culled()).count() as u64;
        let config = MachineConfig::builder()
            .processors(procs)
            .distribution(dist)
            .cache(CacheKind::Perfect)
            .build()
            .expect("valid");
        let report = Machine::new(config).run(s);
        let handled: u64 = report
            .nodes()
            .iter()
            .map(|n| n.triangles + n.discarded)
            .sum();
        prop_assert_eq!(handled, live * procs as u64);
        prop_assert_eq!(report.triangles_routed(),
            report.nodes().iter().map(|n| n.triangles).sum::<u64>());
    }
}
