//! Axis-aligned integer rectangles: screens, tiles and bounding boxes.

use std::fmt;

/// A half-open axis-aligned rectangle of pixels: `x ∈ [x0, x1)`,
/// `y ∈ [y0, y1)`.
///
/// The half-open convention means adjacent tiles partition the screen with
/// no overlap and no gap, which the distribution property tests rely on.
///
/// # Examples
///
/// ```
/// use sortmid_geom::Rect;
///
/// let screen = Rect::of_size(640, 480);
/// let tile = Rect::new(16, 16, 32, 32);
/// assert!(screen.contains_rect(&tile));
/// assert_eq!(tile.area(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Inclusive left edge.
    pub x0: i32,
    /// Inclusive top edge.
    pub y0: i32,
    /// Exclusive right edge.
    pub x1: i32,
    /// Exclusive bottom edge.
    pub y1: i32,
}

impl Rect {
    /// An empty rectangle at the origin.
    pub const EMPTY: Rect = Rect { x0: 0, y0: 0, x1: 0, y1: 0 };

    /// Creates a rectangle; an inverted rectangle is normalised to empty.
    pub fn new(x0: i32, y0: i32, x1: i32, y1: i32) -> Self {
        if x1 <= x0 || y1 <= y0 {
            Rect { x0, y0, x1: x0, y1: y0 }
        } else {
            Rect { x0, y0, x1, y1 }
        }
    }

    /// Creates a rectangle anchored at the origin with the given size.
    pub fn of_size(width: u32, height: u32) -> Self {
        Rect::new(0, 0, width as i32, height as i32)
    }

    /// Width in pixels (0 when empty).
    pub fn width(&self) -> u32 {
        (self.x1 - self.x0).max(0) as u32
    }

    /// Height in pixels (0 when empty).
    pub fn height(&self) -> u32 {
        (self.y1 - self.y0).max(0) as u32
    }

    /// Number of pixels covered.
    pub fn area(&self) -> u64 {
        self.width() as u64 * self.height() as u64
    }

    /// True when the rectangle covers no pixel.
    pub fn is_empty(&self) -> bool {
        self.x1 <= self.x0 || self.y1 <= self.y0
    }

    /// True when pixel `(x, y)` lies inside.
    pub fn contains(&self, x: i32, y: i32) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// True when `other` lies entirely inside `self` (empty rectangles are
    /// contained everywhere).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.is_empty()
            || (other.x0 >= self.x0 && other.x1 <= self.x1 && other.y0 >= self.y0 && other.y1 <= self.y1)
    }

    /// Intersection (possibly empty).
    pub fn intersect(&self, other: &Rect) -> Rect {
        Rect::new(
            self.x0.max(other.x0),
            self.y0.max(other.y0),
            self.x1.min(other.x1),
            self.y1.min(other.y1),
        )
    }

    /// True when the two rectangles share at least one pixel.
    pub fn overlaps(&self, other: &Rect) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Smallest rectangle containing both (empty inputs are ignored).
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect::new(
            self.x0.min(other.x0),
            self.y0.min(other.y0),
            self.x1.max(other.x1),
            self.y1.max(other.y1),
        )
    }

    /// Iterates over all pixels in row-major order.
    pub fn pixels(&self) -> Pixels {
        Pixels {
            rect: *self,
            x: self.x0,
            y: self.y0,
        }
    }

    /// The smallest rectangle of whole `w × h` tiles covering `self`,
    /// expressed in tile coordinates (also half-open).
    ///
    /// # Panics
    ///
    /// Panics if `w` or `h` is zero.
    pub fn tile_cover(&self, w: u32, h: u32) -> Rect {
        assert!(w > 0 && h > 0, "tile size must be positive");
        if self.is_empty() {
            return Rect::EMPTY;
        }
        Rect::new(
            self.x0.div_euclid(w as i32),
            self.y0.div_euclid(h as i32),
            (self.x1 - 1).div_euclid(w as i32) + 1,
            (self.y1 - 1).div_euclid(h as i32) + 1,
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})x[{}, {})", self.x0, self.x1, self.y0, self.y1)
    }
}

/// Row-major pixel iterator produced by [`Rect::pixels`].
#[derive(Debug, Clone)]
pub struct Pixels {
    rect: Rect,
    x: i32,
    y: i32,
}

impl Iterator for Pixels {
    type Item = (i32, i32);

    fn next(&mut self) -> Option<(i32, i32)> {
        if self.rect.is_empty() || self.y >= self.rect.y1 {
            return None;
        }
        let out = (self.x, self.y);
        self.x += 1;
        if self.x >= self.rect.x1 {
            self.x = self.rect.x0;
            self.y += 1;
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.rect.is_empty() || self.y >= self.rect.y1 {
            return (0, Some(0));
        }
        let remaining = (self.rect.y1 - self.y - 1) as usize * self.rect.width() as usize
            + (self.rect.x1 - self.x) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Pixels {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalises_inverted() {
        let r = Rect::new(5, 5, 3, 9);
        assert!(r.is_empty());
        assert_eq!(r.area(), 0);
    }

    #[test]
    fn containment_and_area() {
        let r = Rect::new(2, 3, 10, 7);
        assert_eq!(r.width(), 8);
        assert_eq!(r.height(), 4);
        assert_eq!(r.area(), 32);
        assert!(r.contains(2, 3));
        assert!(r.contains(9, 6));
        assert!(!r.contains(10, 6));
        assert!(!r.contains(9, 7));
    }

    #[test]
    fn intersection_union() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 15, 15);
        assert_eq!(a.intersect(&b), Rect::new(5, 5, 10, 10));
        assert_eq!(a.union(&b), Rect::new(0, 0, 15, 15));
        assert!(a.overlaps(&b));
        let c = Rect::new(20, 20, 30, 30);
        assert!(!a.overlaps(&c));
        assert!(a.intersect(&c).is_empty());
        assert_eq!(a.union(&Rect::EMPTY), a);
        assert_eq!(Rect::EMPTY.union(&a), a);
    }

    #[test]
    fn pixel_iteration_is_row_major_and_exact() {
        let r = Rect::new(1, 1, 3, 3);
        let px: Vec<(i32, i32)> = r.pixels().collect();
        assert_eq!(px, vec![(1, 1), (2, 1), (1, 2), (2, 2)]);
        assert_eq!(r.pixels().len(), 4);
        assert_eq!(Rect::EMPTY.pixels().count(), 0);
    }

    #[test]
    fn tile_cover_rounds_outward() {
        let r = Rect::new(3, 5, 17, 16);
        let t = r.tile_cover(8, 8);
        assert_eq!(t, Rect::new(0, 0, 3, 2));
        // A rect exactly on tile boundaries covers exactly those tiles.
        let r2 = Rect::new(8, 8, 16, 24);
        assert_eq!(r2.tile_cover(8, 8), Rect::new(1, 1, 2, 3));
        assert_eq!(Rect::EMPTY.tile_cover(8, 8), Rect::EMPTY);
    }

    #[test]
    fn tile_cover_negative_coords() {
        let r = Rect::new(-9, -1, 1, 1);
        let t = r.tile_cover(8, 8);
        assert_eq!(t, Rect::new(-2, -1, 1, 1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Rect::new(0, 1, 2, 3)), "[0, 2)x[1, 3)");
    }
}
