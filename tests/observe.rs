//! Integration tests of the tracing subsystem: tracing must observe the
//! simulation without perturbing it, and the exported artefacts must be
//! internally consistent with the run report.

use sortmid::{
    CacheKind, Distribution, Machine, MachineConfig, RoutingPlan, SpatialCollector, TraceRecorder,
    TraceSink,
};
use sortmid_observe::{chrome_trace, TimeSeries};
use sortmid_raster::FragmentStream;
use sortmid_scene::{Benchmark, SceneBuilder};

fn stream() -> FragmentStream {
    SceneBuilder::benchmark(Benchmark::Quake)
        .scale(0.08)
        .build()
        .rasterize()
}

fn config(procs: u32, buffer: usize) -> MachineConfig {
    MachineConfig::builder()
        .processors(procs)
        .distribution(Distribution::block(16))
        .cache(CacheKind::PaperL1)
        .bus_ratio(1.0)
        .triangle_buffer(buffer)
        .build()
        .expect("valid config")
}

/// Tracing is a pure observer: the traced report equals the untraced one,
/// for both the direct and the plan-replay paths.
#[test]
fn tracing_does_not_perturb_the_run() {
    let s = stream();
    let machine = Machine::new(config(8, 100));
    let untraced = machine.run(&s);
    let mut rec = TraceRecorder::new();
    let traced = machine.run_traced(&s, &mut rec);
    assert_eq!(untraced, traced);
    assert!(!rec.is_empty());

    let plan = RoutingPlan::build(&s, &machine.config().distribution, 8);
    assert_eq!(untraced, machine.run_planned(&s, &plan));
}

/// Event counts cross-check the report's counters: one start per routed
/// triangle, one discard per discarded one, a push and a pop per FIFO
/// slot, and one bus fill per L1 miss.
#[test]
fn event_counts_match_the_report() {
    let s = stream();
    let live = s.triangles().iter().filter(|t| !t.is_culled()).count() as u64;
    let machine = Machine::new(config(8, 100));
    let mut rec = TraceRecorder::new();
    let report = machine.run_traced(&s, &mut rec);

    let (starts, retires, discards, pushes, pops, fills) = rec.counts();
    let routed: u64 = report.nodes().iter().map(|n| n.triangles).sum();
    let discarded: u64 = report.nodes().iter().map(|n| n.discarded).sum();
    assert_eq!(starts, routed);
    assert_eq!(retires, routed, "every started triangle retires");
    assert_eq!(discards, discarded);
    assert_eq!(pushes, live * 8, "every broadcast occupies every FIFO");
    assert_eq!(pops, pushes, "every slot is eventually drained");
    assert_eq!(fills, report.cache_totals().misses(), "one fill per L1 miss");

    // The trace horizon is bounded by the machine's finish (the engine may
    // outlive the last fill, never the other way round).
    assert!(rec.horizon() <= report.total_cycles());
}

/// The Perfetto export round-trips through the JSON parser and contains
/// the tracks the machine promises: per-node process metadata, triangle
/// and bus spans, FIFO-depth counters.
#[test]
fn perfetto_export_is_structurally_sound() {
    use sortmid_devharness::Json;

    let s = stream();
    let machine = Machine::new(config(4, 100));
    let mut rec = TraceRecorder::new();
    let report = machine.run_traced(&s, &mut rec);

    let labels = machine.node_labels();
    assert_eq!(labels.len(), 4);
    assert!(labels[0].contains("set-assoc"), "{labels:?}");

    let doc = chrome_trace(&rec, &labels);
    let parsed = Json::parse(&doc.render()).expect("export must be valid JSON");
    let events = parsed.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");

    let count = |ph: &str| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
            .count() as u64
    };
    assert_eq!(count("M"), 3 * 4, "process + 2 thread names per node");
    let routed: u64 = report.nodes().iter().map(|n| n.triangles).sum();
    let fills = report.cache_totals().misses();
    assert_eq!(count("X"), routed + fills, "triangle spans + bus-fill spans");
    assert!(count("C") > 0, "FIFO depth counter samples");

    // Every span stays within the machine's lifetime.
    for e in events {
        if e.get("ph").and_then(Json::as_str) == Some("X") {
            let ts = e.get("ts").and_then(Json::as_u64).expect("ts");
            let dur = e.get("dur").and_then(Json::as_u64).expect("dur");
            assert!(ts + dur <= report.total_cycles());
        }
    }
}

/// The sampled series agree with the report: integrated bus utilization
/// matches bus-busy cycles, and a tiny FIFO shows deeper starvation than
/// an ideal one.
#[test]
fn series_and_starvation_agree_with_reports() {
    let s = stream();

    let machine = Machine::new(config(8, 100));
    let mut rec = TraceRecorder::new();
    let report = machine.run_traced(&s, &mut rec);
    let horizon = report.total_cycles();
    for (i, node) in report.nodes().iter().enumerate() {
        let util = TimeSeries::utilization(&rec.bus_spans(i as u32), 1.max(horizon / 50), horizon);
        let integrated: f64 = util.bins().iter().sum::<f64>() * util.cadence() as f64;
        let expected = node.bus_busy_cycles as f64;
        assert!(
            (integrated - expected).abs() < 1e-6 * expected.max(1.0),
            "node {i}: integrated {integrated} vs busy {expected}"
        );
    }

    let starved = |buffer: usize| {
        Machine::new(config(8, buffer))
            .run(&s)
            .total_starved()
    };
    assert!(
        starved(1) > starved(10_000),
        "head-of-line blocking must show up as starvation"
    );
}

/// A custom sink sees the same stream `TraceRecorder` stores.
#[test]
fn custom_sinks_plug_in() {
    struct CountingSink(u64);
    impl TraceSink for CountingSink {
        fn record(&mut self, _event: sortmid::TraceEvent) {
            self.0 += 1;
        }
    }

    let s = stream();
    let machine = Machine::new(config(4, 100));
    let mut counter = CountingSink(0);
    machine.run_traced(&s, &mut counter);
    let mut rec = TraceRecorder::new();
    machine.run_traced(&s, &mut rec);
    assert_eq!(counter.0, rec.len() as u64);
    assert!(counter.0 > 0);
}

/// The spatial collector is a pure observer too, and the plan-replay path
/// produces exactly the same spatial attribution as the direct path:
/// identical tile stats, per-node fragment/setup totals and miss classes.
#[test]
fn spatial_collection_agrees_between_direct_and_plan_replay() {
    let s = stream();
    let machine = Machine::new(config(8, 100));
    let untraced = machine.run(&s);
    let screen = s.screen();
    let collector =
        || SpatialCollector::new(screen.width(), screen.height(), 16, 8);

    let mut direct = collector();
    assert_eq!(untraced, machine.run_traced(&s, &mut direct));

    let plan = RoutingPlan::build(&s, &machine.config().distribution, 8);
    let mut replay = collector();
    assert_eq!(untraced, machine.run_planned_traced(&s, &plan, &mut replay));

    assert_eq!(direct.grid().cells(), replay.grid().cells());
    assert_eq!(direct.node_fragments(), replay.node_fragments());
    assert_eq!(direct.node_lines(), replay.node_lines());
    assert_eq!(direct.node_setup(), replay.node_setup());
    assert_eq!(direct.node_misses(), replay.node_misses());
    assert!(direct.fragment_total() > 0, "the scene draws fragments");
}

/// The heatmap JSON artefact round-trips through the devharness parser
/// with its conservation and three-C identities intact.
#[test]
fn heatmap_json_roundtrips_through_the_devharness_parser() {
    use sortmid_devharness::json::Json;

    let s = stream();
    let machine = Machine::new(
        MachineConfig::builder()
            .processors(8)
            .distribution(Distribution::block(16))
            .cache(CacheKind::Classifying(
                sortmid_cache::CacheGeometry::paper_l1(),
            ))
            .bus_ratio(1.0)
            .build()
            .expect("valid config"),
    );
    let screen = s.screen();
    let mut col = SpatialCollector::new(screen.width(), screen.height(), 32, 8);
    let report = machine.run_traced(&s, &mut col);

    let text = col.to_json("roundtrip", report.summary()).render();
    let doc = Json::parse(&text).expect("rendered JSON must parse back");

    assert_eq!(
        doc.get("preset").and_then(Json::as_str),
        Some("roundtrip")
    );
    assert_eq!(
        doc.get("config").and_then(Json::as_str),
        Some(report.summary())
    );
    assert_eq!(
        doc.get("fragments").and_then(Json::as_u64),
        Some(report.fragments())
    );
    let rows = doc.get("rows").and_then(Json::as_u64).unwrap();
    let cols = doc.get("cols").and_then(Json::as_u64).unwrap();
    let planes = doc.get("tiles").unwrap();
    let mut tile_sum = 0;
    let fragment_rows = planes.get("fragments").and_then(Json::as_arr).unwrap();
    assert_eq!(fragment_rows.len() as u64, rows);
    for row in fragment_rows {
        let cells = row.as_arr().unwrap();
        assert_eq!(cells.len() as u64, cols);
        tile_sum += cells.iter().filter_map(Json::as_u64).sum::<u64>();
    }
    assert_eq!(tile_sum, report.fragments());
    for node in doc.get("nodes").and_then(Json::as_arr).unwrap() {
        let get = |k: &str| node.get(k).and_then(Json::as_u64).unwrap();
        assert_eq!(
            get("compulsory") + get("capacity") + get("conflict"),
            get("misses"),
            "three-C identity must survive the round trip"
        );
    }
}
