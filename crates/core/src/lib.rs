//! `sortmid` — a cycle-level simulator of parallel sort-middle texture
//! mapping with per-node texture caches.
//!
//! This crate is the primary contribution of the reproduction of
//! *“The Best Distribution for a Parallel OpenGL 3D Engine with Texture
//! Caches”* (Vartanian, Béchennec, Drach-Temam; HPCA 2000): a machine of
//! `P` texture-mapping nodes, each owning a statically interleaved part of
//! the screen, fed in strict stream order by an ideal geometry stage through
//! bounded triangle FIFOs.
//!
//! The machine reproduces the paper's four interacting effects:
//!
//! 1. **global load balance** — who owns the hot pixels
//!    ([`work::pixel_work`], Figure 5);
//! 2. **triangle setup overhead** — 25 cycles per triangle per overlapped
//!    node (Figure 5's speedup collapse at tiny tiles);
//! 3. **texture locality** — per-node caches see fewer reuses when tiles
//!    shrink ([`report::RunReport::texel_to_fragment`], Figure 6);
//! 4. **local load imbalance** — bounded FIFOs with head-of-line blocking
//!    (Figure 8).
//!
//! # Quickstart
//!
//! ```
//! use sortmid::{CacheKind, Distribution, Machine, MachineConfig};
//! use sortmid_scene::{Benchmark, SceneBuilder};
//!
//! let scene = SceneBuilder::benchmark(Benchmark::TeapotFull).scale(0.1).build();
//! let stream = scene.rasterize();
//!
//! let baseline = Machine::new(MachineConfig::uniprocessor()).run(&stream);
//! let config = MachineConfig::builder()
//!     .processors(4)
//!     .distribution(Distribution::block(16))
//!     .cache(CacheKind::PaperL1)
//!     .build()
//!     .expect("valid config");
//! let report = Machine::new(config).run(&stream);
//!
//! let speedup = report.speedup_vs(&baseline);
//! assert!(speedup > 1.0 && speedup <= 4.0);
//! ```

pub mod analysis;
pub mod batch;
pub mod config;
pub mod distribution;
pub mod dynamic;
pub mod machine;
pub mod node;
pub mod plan;
pub mod replay;
pub mod report;
pub mod sched;
pub mod sortlast;
pub mod sweep;
pub mod work;

pub use batch::PlanLanes;
pub use config::{CacheKind, ConfigError, MachineConfig, MachineConfigBuilder};
pub use distribution::Distribution;
pub use machine::Machine;
pub use plan::{OwnerLut, RoutingPlan};
pub use report::{NodeReport, RunReport};
pub use sortmid_cache::{MissBreakdown, MissIdentityError};
pub use sortmid_observe::{
    CycleBreakdown, HostProfile, HostProfiler, HostSink, MetricsRegistry, MissClass,
    MissClassCounts, NullHostSink, NullSink, ScreenGrid, SpatialCollector, TileStats, TraceEvent,
    TraceRecorder, TraceSink,
};
pub use replay::capture_line_trace;
pub use sched::{lpt_order, run_graph, CostModel, TaskGraph};
pub use sweep::{
    grid_hash, run_sweep, run_sweep_profiled, run_sweep_with_options, run_sweep_with_threads,
    SweepGrid, SweepOptions,
};

/// Maximum processor count the machine supports (the paper evaluates up to
/// 64; the overlap masks are 128-bit).
pub const MAX_PROCESSORS: u32 = 128;
