//! Run results: machine time, per-node counters and derived metrics.

use sortmid_cache::stats::MissBreakdown;
use sortmid_cache::CacheStats;
use sortmid_memsys::Cycle;
use sortmid_observe::CycleBreakdown;
use sortmid_util::stats::imbalance_percent;
use std::fmt;

/// Counters of one node after a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeReport {
    /// Fragments this node drew.
    pub pixels: u64,
    /// Triangles routed to this node (each paid the setup floor).
    pub triangles: u64,
    /// Broadcast triangles this node's clipper discarded (they occupied a
    /// FIFO slot but cost no engine time).
    pub discarded: u64,
    /// Cycle the node's last pixel fully completed.
    pub finish: Cycle,
    /// Cycles the engine spent scanning or in the setup floor.
    pub busy_cycles: u64,
    /// Cycles the engine stalled on the saturated bus.
    pub stall_cycles: u64,
    /// Cycles padding the per-triangle setup floor (a subset of
    /// [`busy_cycles`](Self::busy_cycles)).
    pub setup_floor_cycles: u64,
    /// Cycles the engine starved on an empty FIFO waiting for the geometry
    /// stage (Figure 8's local load imbalance).
    pub starved_cycles: u64,
    /// Cycles after the engine's last scan while line fills drained (the
    /// fill tail).
    pub idle_cycles: u64,
    /// Cycles this node's texture bus spent transferring lines.
    pub bus_busy_cycles: u64,
    /// L1 access statistics.
    pub cache: CacheStats,
    /// Per-kind miss decomposition (only with
    /// [`CacheKind::Classifying`](crate::CacheKind::Classifying)).
    pub miss_breakdown: Option<MissBreakdown>,
    /// Lines fetched from external texture memory.
    pub external_fetches: u64,
}

impl NodeReport {
    /// Attributes every cycle up to [`finish`](Self::finish) to one of the
    /// five categories. The identity `breakdown.total() == finish` holds
    /// exactly (see [`CycleBreakdown::verify`]); `busy` here excludes the
    /// setup-floor padding that [`busy_cycles`](Self::busy_cycles)
    /// includes.
    pub fn cycle_breakdown(&self) -> CycleBreakdown {
        CycleBreakdown {
            setup: self.setup_floor_cycles,
            busy: self.busy_cycles - self.setup_floor_cycles,
            bus_stall: self.stall_cycles,
            starved: self.starved_cycles,
            idle: self.idle_cycles,
        }
    }

    /// Checks the three-C exact-sum identity `compulsory + capacity +
    /// conflict == misses` against this node's cache counters — the miss
    /// analogue of the cycle identity above. Nodes without a classifying
    /// cache carry no breakdown and trivially pass.
    ///
    /// # Errors
    ///
    /// Returns the mismatching totals when the identity does not hold.
    pub fn verify_misses(&self) -> Result<(), sortmid_cache::MissIdentityError> {
        match &self.miss_breakdown {
            Some(b) => b.verify(self.cache.misses()),
            None => Ok(()),
        }
    }
}

/// The result of one machine run.
///
/// # Examples
///
/// ```
/// use sortmid::{Machine, MachineConfig};
/// use sortmid_scene::{Benchmark, SceneBuilder};
///
/// let scene = SceneBuilder::benchmark(Benchmark::Quake).scale(0.1).build();
/// let stream = scene.rasterize();
/// let report = Machine::new(MachineConfig::uniprocessor()).run(&stream);
/// assert_eq!(report.fragments(), stream.fragment_count());
/// assert!(report.total_cycles() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    summary: String,
    total_cycles: Cycle,
    nodes: Vec<NodeReport>,
    fragments: u64,
    triangles: u64,
    triangles_routed: u64,
}

impl RunReport {
    pub(crate) fn new(
        summary: String,
        total_cycles: Cycle,
        nodes: Vec<NodeReport>,
        fragments: u64,
        triangles: u64,
        triangles_routed: u64,
    ) -> Self {
        RunReport {
            summary,
            total_cycles,
            nodes,
            fragments,
            triangles,
            triangles_routed,
        }
    }

    /// The configuration summary this report belongs to.
    pub fn summary(&self) -> &str {
        &self.summary
    }

    /// Machine time: the cycle the slowest node finished.
    pub fn total_cycles(&self) -> Cycle {
        self.total_cycles
    }

    /// Per-node counters.
    pub fn nodes(&self) -> &[NodeReport] {
        &self.nodes
    }

    /// Total fragments drawn.
    pub fn fragments(&self) -> u64 {
        self.fragments
    }

    /// Triangles in the stream (including culled).
    pub fn triangles(&self) -> u64 {
        self.triangles
    }

    /// Sum over triangles of the number of nodes each was routed to — the
    /// primitive-overlap factor of Molnar's analysis.
    pub fn triangles_routed(&self) -> u64 {
        self.triangles_routed
    }

    /// Mean number of nodes a (non-culled) triangle was routed to.
    pub fn overlap_factor(&self) -> f64 {
        if self.triangles == 0 {
            0.0
        } else {
            self.triangles_routed as f64 / self.triangles as f64
        }
    }

    /// Speedup against a (typically single-processor) baseline run.
    ///
    /// # Panics
    ///
    /// Panics if this run took zero cycles.
    pub fn speedup_vs(&self, baseline: &RunReport) -> f64 {
        assert!(self.total_cycles > 0, "run took zero cycles");
        baseline.total_cycles as f64 / self.total_cycles as f64
    }

    /// The paper's Figure 5 metric over *pixel work*: percent by which the
    /// busiest node exceeds the average.
    pub fn pixel_imbalance_percent(&self) -> f64 {
        let work: Vec<f64> = self.nodes.iter().map(|n| n.pixels as f64).collect();
        imbalance_percent(&work)
    }

    /// Imbalance over full engine-busy cycles (includes setup floors).
    pub fn busy_imbalance_percent(&self) -> f64 {
        let work: Vec<f64> = self.nodes.iter().map(|n| n.busy_cycles as f64).collect();
        imbalance_percent(&work)
    }

    /// The paper's Figure 6 metric: texels fetched from external memory per
    /// fragment drawn (16 texels per fetched line).
    pub fn texel_to_fragment(&self) -> f64 {
        if self.fragments == 0 {
            return 0.0;
        }
        let texels: u64 = self.nodes.iter().map(|n| n.external_fetches * 16).sum();
        texels as f64 / self.fragments as f64
    }

    /// Aggregate L1 statistics over all nodes.
    pub fn cache_totals(&self) -> CacheStats {
        let mut total = CacheStats::new();
        for n in &self.nodes {
            total.merge(&n.cache);
        }
        total
    }

    /// Total engine stall cycles across nodes (bus saturation indicator).
    pub fn total_stalls(&self) -> u64 {
        self.nodes.iter().map(|n| n.stall_cycles).sum()
    }

    /// Total FIFO-starvation cycles across nodes (Figure 8's local load
    /// imbalance indicator: shrinks as the triangle buffer grows).
    pub fn total_starved(&self) -> u64 {
        self.nodes.iter().map(|n| n.starved_cycles).sum()
    }

    /// Sum of all nodes' [`cycle_breakdown`](NodeReport::cycle_breakdown)s.
    /// Its total equals the sum of per-node finish times, *not*
    /// `nodes * total_cycles` — nodes finish at different cycles.
    pub fn aggregate_breakdown(&self) -> CycleBreakdown {
        let mut total = CycleBreakdown::default();
        for n in &self.nodes {
            total += n.cycle_breakdown();
        }
        total
    }

    /// Aggregate miss decomposition over nodes, when every node tracked it.
    pub fn miss_breakdown(&self) -> Option<MissBreakdown> {
        let mut total = MissBreakdown::default();
        for n in &self.nodes {
            let b = n.miss_breakdown?;
            total.compulsory += b.compulsory;
            total.capacity += b.capacity;
            total.conflict += b.conflict;
        }
        if self.nodes.is_empty() {
            None
        } else {
            Some(total)
        }
    }

    /// Mean texture-bus utilisation across nodes: bus-busy cycles divided
    /// by machine time. Near 1.0 on a node means the memory system, not
    /// the engine, bounds it (the paper's bandwidth saturation).
    pub fn bus_utilization(&self) -> f64 {
        if self.total_cycles == 0 || self.nodes.is_empty() {
            return 0.0;
        }
        let busy: u64 = self.nodes.iter().map(|n| n.bus_busy_cycles).sum();
        busy as f64 / (self.total_cycles as f64 * self.nodes.len() as f64)
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} cycles, {} fragments, t/f {:.2}, imbalance {:.1}%",
            self.summary,
            self.total_cycles,
            self.fragments,
            self.texel_to_fragment(),
            self.pixel_imbalance_percent()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(pixels: u64, fetches: u64) -> NodeReport {
        NodeReport {
            pixels,
            triangles: 1,
            discarded: 0,
            finish: pixels,
            busy_cycles: pixels,
            stall_cycles: 0,
            setup_floor_cycles: 0,
            starved_cycles: 0,
            idle_cycles: 0,
            bus_busy_cycles: fetches * 16,
            cache: CacheStats::new(),
            miss_breakdown: None,
            external_fetches: fetches,
        }
    }

    fn report(nodes: Vec<NodeReport>, cycles: u64) -> RunReport {
        let fragments = nodes.iter().map(|n| n.pixels).sum();
        RunReport::new("test".into(), cycles, nodes, fragments, 10, 15)
    }

    #[test]
    fn speedup_and_imbalance() {
        let base = report(vec![node(1000, 0)], 1000);
        let par = report(vec![node(300, 0), node(200, 0), node(250, 0), node(250, 0)], 300);
        assert!((par.speedup_vs(&base) - 1000.0 / 300.0).abs() < 1e-9);
        // busiest 300 vs mean 250 -> 20 %
        assert!((par.pixel_imbalance_percent() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn texel_to_fragment_accounts_lines() {
        let r = report(vec![node(100, 10), node(100, 0)], 100);
        // 10 lines * 16 texels / 200 fragments = 0.8
        assert!((r.texel_to_fragment() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn overlap_factor() {
        let r = report(vec![node(10, 0)], 10);
        assert!((r.overlap_factor() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn bus_utilization_averages_over_nodes() {
        // Two nodes over 100 cycles: one fetched 5 lines (80 busy cycles),
        // the other none -> mean utilisation 0.4.
        let r = report(vec![node(100, 5), node(100, 0)], 100);
        assert!((r.bus_utilization() - 0.4).abs() < 1e-9);
        let idle = RunReport::new("idle".into(), 0, vec![], 0, 0, 0);
        assert_eq!(idle.bus_utilization(), 0.0);
    }

    #[test]
    fn empty_run_has_zero_ratios() {
        let r = RunReport::new("empty".into(), 1, vec![], 0, 0, 0);
        assert_eq!(r.texel_to_fragment(), 0.0);
        assert_eq!(r.overlap_factor(), 0.0);
        assert_eq!(r.pixel_imbalance_percent(), 0.0);
    }

    #[test]
    fn breakdown_identity_and_aggregate() {
        let mut n = node(100, 0);
        n.setup_floor_cycles = 30;
        n.busy_cycles = 80;
        n.stall_cycles = 5;
        n.starved_cycles = 10;
        n.idle_cycles = 5;
        n.finish = 100;
        let b = n.cycle_breakdown();
        assert_eq!(b.setup, 30);
        assert_eq!(b.busy, 50, "busy excludes the setup floor");
        assert!(b.verify(n.finish).is_ok());
        let r = report(vec![n.clone(), n], 100);
        assert_eq!(r.aggregate_breakdown().total(), 200);
        assert_eq!(r.total_starved(), 20);
    }

    #[test]
    fn display_is_informative() {
        let r = report(vec![node(10, 1)], 42);
        let s = r.to_string();
        assert!(s.contains("42 cycles"));
        assert!(s.contains("t/f"));
    }
}
