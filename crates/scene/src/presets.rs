//! The seven benchmark presets of the paper's Table 1.
//!
//! Each preset is a [`SceneConfig`] calibrated so the generated scene's
//! measured statistics land near the published row: screen size, triangle
//! count, depth complexity, texture count, texture megabytes and unique
//! texel/fragment ratio. `massive11255` and `32massive11255` share their
//! geometry (same frame of the SPEC APC `massive1` demo) and differ only in
//! texture resolution/density — the paper's ×2 vs ×32 magnification
//! correction.

use crate::config::SceneConfig;
use std::fmt;
use std::str::FromStr;

/// The paper's benchmark scenes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// `room3` — textured room microbenchmark, very high depth complexity.
    Room3,
    /// `teapot.full` — a single large object with one big texture.
    TeapotFull,
    /// `quake` — Quake 1 `bigass1` demo frame; big, barely-reused textures.
    Quake,
    /// `massive11255` — SPEC APC Quake2 network demo, frame 1255, textures
    /// magnified ×2.
    Massive11255,
    /// `32massive11255` — the same frame with ×32 texture magnification.
    Massive32_11255,
    /// `blowout775` — Half-Life demo frame; many tiny, repeated textures.
    Blowout775,
    /// `truc640` — Half-Life demo frame.
    Truc640,
}

impl Benchmark {
    /// All seven benchmarks in the paper's Table 1 order.
    pub const ALL: [Benchmark; 7] = [
        Benchmark::Room3,
        Benchmark::TeapotFull,
        Benchmark::Quake,
        Benchmark::Massive11255,
        Benchmark::Massive32_11255,
        Benchmark::Blowout775,
        Benchmark::Truc640,
    ];

    /// The scene's name as printed in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Room3 => "room3",
            Benchmark::TeapotFull => "teapot.full",
            Benchmark::Quake => "quake",
            Benchmark::Massive11255 => "massive11255",
            Benchmark::Massive32_11255 => "32massive11255",
            Benchmark::Blowout775 => "blowout775",
            Benchmark::Truc640 => "truc640",
        }
    }

    /// The paper's Table 1 row for this scene:
    /// `(screen_w, screen_h, mpixels, depth, triangles, textures, mbytes,
    /// unique_texel_per_fragment)` — used by the Table 1 experiment to print
    /// paper-vs-measured.
    pub fn paper_row(&self) -> (u32, u32, f64, f64, u32, u32, f64, f64) {
        match self {
            Benchmark::Room3 => (1280, 1024, 13.0, 9.9, 163_000, 24, 1.5, 0.28),
            Benchmark::TeapotFull => (1280, 1024, 2.8, 2.1, 10_000, 1, 6.0, 1.13),
            Benchmark::Quake => (1152, 870, 2.0, 1.9, 7_400, 954, 5.2, 1.3),
            Benchmark::Massive11255 => (1600, 1200, 8.0, 4.1, 13_000, 1055, 1.0, 0.13),
            Benchmark::Massive32_11255 => (1600, 1200, 8.0, 4.1, 13_000, 1055, 3.4, 0.42),
            Benchmark::Blowout775 => (1600, 1200, 5.9, 3.0, 5_947, 1778, 0.8, 0.1),
            Benchmark::Truc640 => (1600, 1200, 8.3, 4.3, 12_195, 1530, 1.2, 0.15),
        }
    }

    /// The calibrated generator configuration at full (paper) scale.
    pub fn config(&self) -> SceneConfig {
        let (width, height, _, depth, triangles, textures, _, _) = self.paper_row();
        let base = SceneConfig {
            name: self.name().to_string(),
            width,
            height,
            target_triangles: triangles,
            target_depth: depth,
            texture_count: textures,
            tex_size_log2: (5, 5),
            texel_density: 1.0,
            hotspots: 4,
            cluster_sigma: 0.08,
            cluster_fraction: 0.75,
            background_layers: 1,
            patch_quads: (2, 6),
            seed: 0x5EED_0000 + *self as u64,
        };
        match self {
            Benchmark::Room3 => SceneConfig {
                tex_size_log2: (7, 8),
                texel_density: 0.3,
                hotspots: 6,
                cluster_sigma: 0.07,
                cluster_fraction: 0.8,
                background_layers: 2,
                patch_quads: (2, 8),
                ..base
            },
            Benchmark::TeapotFull => SceneConfig {
                tex_size_log2: (11, 11),
                texel_density: 0.75,
                hotspots: 1,
                cluster_sigma: 0.04,
                cluster_fraction: 1.0,
                background_layers: 1,
                patch_quads: (12, 24),
                ..base
            },
            Benchmark::Quake => SceneConfig {
                tex_size_log2: (6, 6),
                texel_density: 1.5,
                hotspots: 3,
                cluster_fraction: 0.6,
                background_layers: 1,
                patch_quads: (2, 6),
                ..base
            },
            Benchmark::Massive11255 => SceneConfig {
                tex_size_log2: (4, 5),
                texel_density: 0.33,
                hotspots: 8,
                cluster_sigma: 0.06,
                cluster_fraction: 0.85,
                background_layers: 2,
                patch_quads: (2, 6),
                seed: 0x5EED_0000 + Benchmark::Massive11255 as u64,
                ..base
            },
            Benchmark::Massive32_11255 => SceneConfig {
                // Same frame as massive11255 (same seed and geometry
                // parameters), magnified textures: larger and denser.
                name: self.name().to_string(),
                tex_size_log2: (5, 6),
                texel_density: 0.6,
                hotspots: 8,
                cluster_sigma: 0.06,
                cluster_fraction: 0.85,
                background_layers: 2,
                patch_quads: (2, 6),
                seed: 0x5EED_0000 + Benchmark::Massive11255 as u64,
                ..base
            },
            Benchmark::Blowout775 => SceneConfig {
                tex_size_log2: (4, 5),
                texel_density: 0.6,
                hotspots: 4,
                cluster_sigma: 0.09,
                cluster_fraction: 0.7,
                background_layers: 2,
                patch_quads: (2, 5),
                ..base
            },
            Benchmark::Truc640 => SceneConfig {
                tex_size_log2: (4, 5),
                texel_density: 0.35,
                hotspots: 6,
                cluster_sigma: 0.08,
                cluster_fraction: 0.75,
                background_layers: 2,
                patch_quads: (2, 6),
                ..base
            },
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error from parsing a benchmark name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchmarkError {
    input: String,
}

impl fmt::Display for ParseBenchmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown benchmark '{}'", self.input)
    }
}

impl std::error::Error for ParseBenchmarkError {}

impl FromStr for Benchmark {
    type Err = ParseBenchmarkError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Benchmark::ALL
            .iter()
            .copied()
            .find(|b| b.name() == s)
            .ok_or_else(|| ParseBenchmarkError {
                input: s.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(b.name().parse::<Benchmark>().unwrap(), b);
        }
        assert!("nonexistent".parse::<Benchmark>().is_err());
    }

    #[test]
    fn configs_match_table1_headline_numbers() {
        for b in Benchmark::ALL {
            let (w, h, _, depth, tris, textures, _, _) = b.paper_row();
            let c = b.config();
            assert_eq!(c.width, w, "{b}");
            assert_eq!(c.height, h, "{b}");
            assert_eq!(c.target_triangles, tris, "{b}");
            assert_eq!(c.target_depth, depth, "{b}");
            assert_eq!(c.texture_count, textures, "{b}");
        }
    }

    #[test]
    fn massive_variants_share_geometry() {
        let m = Benchmark::Massive11255.config();
        let m32 = Benchmark::Massive32_11255.config();
        assert_eq!(m.seed, m32.seed);
        assert_eq!(m.target_triangles, m32.target_triangles);
        assert_eq!(m.hotspots, m32.hotspots);
        assert!(m32.texel_density > m.texel_density, "magnification raises density");
        assert!(m32.tex_size_log2.0 > m.tex_size_log2.0);
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(Benchmark::Massive32_11255.to_string(), "32massive11255");
        assert_eq!(Benchmark::TeapotFull.to_string(), "teapot.full");
    }

    #[test]
    fn seeds_are_distinct_where_geometry_differs() {
        let mut seeds: Vec<u64> = Benchmark::ALL.iter().map(|b| b.config().seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        // 7 benchmarks, 2 share a frame -> 6 distinct seeds.
        assert_eq!(seeds.len(), 6);
    }
}
