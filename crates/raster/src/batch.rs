//! Struct-of-arrays fragment batches for the machine's hot loop.
//!
//! The AoS [`Fragment`](crate::Fragment) is the stream's interchange format
//! — 40 bytes per fragment, texel addresses included — but the simulator's
//! inner loop only ever needs three things per fragment: its pixel
//! coordinate (for routing and spatial attribution) and the 8 *cache-line
//! ids* of its trilinear footprint. [`FragBatch`] pivots a whole
//! [`FragmentStream`](crate::FragmentStream) into parallel `x`/`y`/line-id
//! arrays once, so every later pass (direct scans under dozens of machine
//! configurations, trace capture for the stack-distance replay) streams
//! through dense lanes instead of gathering 40-byte structs.

use crate::fragment::Fragment;
use crate::stream::FragmentStream;
use sortmid_texture::{footprint_lines, TEXELS_PER_FRAGMENT};

/// A fragment stream pivoted into struct-of-arrays lanes.
///
/// Fragment `i` of the source stream owns `xs[i]`, `ys[i]` and the
/// `TEXELS_PER_FRAGMENT`-wide slice `lines[8*i..8*i+8]` (its footprint's
/// line ids in probe order). Triangle framing is unchanged — the stream's
/// `TriangleRecord` ranges index this batch directly.
///
/// # Examples
///
/// ```
/// use sortmid_geom::{Rect, Triangle, Vertex};
/// use sortmid_texture::{TextureDesc, TextureRegistry};
/// use sortmid_raster::{rasterize, FragBatch};
///
/// let mut reg = TextureRegistry::new();
/// let tex = reg.register(TextureDesc::new(64, 64)?)?;
/// let tri = Triangle::new(
///     tex.0,
///     [
///         Vertex::new(0.0, 0.0, 0.0, 0.0),
///         Vertex::new(8.0, 0.0, 8.0, 0.0),
///         Vertex::new(0.0, 8.0, 0.0, 8.0),
///     ],
/// );
/// let stream = rasterize(&[tri], &reg, Rect::of_size(64, 64));
/// let batch = FragBatch::from_stream(&stream);
/// assert_eq!(batch.len(), stream.fragment_count() as usize);
/// assert_eq!(batch.lane(0).len(), 8);
/// # Ok::<(), sortmid_texture::TextureError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FragBatch {
    xs: Vec<u16>,
    ys: Vec<u16>,
    /// `TEXELS_PER_FRAGMENT` line ids per fragment, contiguous.
    lines: Vec<u32>,
}

impl FragBatch {
    /// Pivots a stream into lanes (one pass over the fragments).
    pub fn from_stream(stream: &FragmentStream) -> Self {
        Self::from_fragments(stream.fragments())
    }

    /// Pivots a raw fragment slice into lanes.
    pub fn from_fragments(fragments: &[Fragment]) -> Self {
        let mut xs = Vec::with_capacity(fragments.len());
        let mut ys = Vec::with_capacity(fragments.len());
        let mut lines = Vec::with_capacity(fragments.len() * TEXELS_PER_FRAGMENT);
        for f in fragments {
            xs.push(f.x);
            ys.push(f.y);
            lines.extend_from_slice(&footprint_lines(&f.texels));
        }
        FragBatch { xs, ys, lines }
    }

    /// Number of fragments in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when the batch holds no fragments.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Fragment `i`'s footprint line ids, in probe order.
    #[inline]
    pub fn lane(&self, i: usize) -> &[u32] {
        self.lane_array(i)
    }

    /// Fragment `i`'s footprint line ids as a fixed-size array reference —
    /// the length is a compile-time constant, so bulk gathers (the
    /// per-plan lane pivot) compile to fixed-width copies.
    #[inline]
    pub fn lane_array(&self, i: usize) -> &[u32; TEXELS_PER_FRAGMENT] {
        self.lines[i * TEXELS_PER_FRAGMENT..]
            .first_chunk::<TEXELS_PER_FRAGMENT>()
            .expect("fragment index out of range")
    }

    /// Fragment `i`'s pixel x coordinate.
    #[inline]
    pub fn x(&self, i: usize) -> u16 {
        self.xs[i]
    }

    /// Fragment `i`'s pixel y coordinate.
    #[inline]
    pub fn y(&self, i: usize) -> u16 {
        self.ys[i]
    }

    /// All line ids, fragment-major (`TEXELS_PER_FRAGMENT` per fragment).
    #[inline]
    pub fn lines(&self) -> &[u32] {
        &self.lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::rasterize;
    use sortmid_geom::{Rect, Triangle, Vertex};
    use sortmid_texture::{TextureDesc, TextureRegistry};

    fn sample_stream() -> FragmentStream {
        let mut reg = TextureRegistry::new();
        let a = reg.register(TextureDesc::new(64, 64).unwrap()).unwrap();
        let b = reg.register(TextureDesc::new(32, 32).unwrap()).unwrap();
        let tri = |tex: sortmid_texture::TextureId, o: f32| {
            Triangle::new(
                tex.0,
                [
                    Vertex::new(o, o, o, o),
                    Vertex::new(o + 12.0, o, o + 12.0, o),
                    Vertex::new(o, o + 12.0, o, o + 12.0),
                ],
            )
        };
        rasterize(&[tri(a, 0.0), tri(b, 7.0)], &reg, Rect::of_size(64, 64))
    }

    #[test]
    fn batch_mirrors_stream_fragment_for_fragment() {
        let stream = sample_stream();
        let batch = FragBatch::from_stream(&stream);
        assert_eq!(batch.len() as u64, stream.fragment_count());
        assert_eq!(batch.lines().len(), batch.len() * TEXELS_PER_FRAGMENT);
        for (i, f) in stream.fragments().iter().enumerate() {
            assert_eq!((batch.x(i), batch.y(i)), (f.x, f.y));
            for (j, t) in f.texels.iter().enumerate() {
                assert_eq!(batch.lane(i)[j], t.line(), "fragment {i} probe {j}");
            }
        }
    }

    #[test]
    fn triangle_ranges_index_the_batch() {
        let stream = sample_stream();
        let batch = FragBatch::from_stream(&stream);
        for rec in stream.triangles() {
            for fi in rec.frag_start..rec.frag_end {
                let f = &stream.fragments()[fi as usize];
                assert!(rec.bbox.contains(batch.x(fi as usize) as i32, f.y as i32));
            }
        }
    }

    #[test]
    fn empty_stream_yields_empty_batch() {
        let reg = TextureRegistry::new();
        let stream = rasterize(&[], &reg, Rect::of_size(8, 8));
        let batch = FragBatch::from_stream(&stream);
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
    }
}
