//! Per-node cycle accounting.
//!
//! Every cycle between 0 and a node's finish time belongs to exactly one
//! category:
//!
//! * **setup** — padding the 25-cycle triangle-setup floor (Figure 5's
//!   overhead at tiny tiles);
//! * **busy** — the engine scanning fragments (useful shading work);
//! * **bus_stall** — the engine blocked because the prefetch window was
//!   full of outstanding line fills (Section 6's bus saturation);
//! * **starved** — the engine idle with an empty FIFO, waiting for the
//!   geometry stage (Figure 8's head-of-line blocking);
//! * **idle** — after the engine's last scan, while outstanding fills
//!   drain (the fill tail).
//!
//! The identity `setup + busy + bus_stall + starved + idle == finish`
//! holds exactly — the engine attributes each cycle as it advances — and
//! is enforced by [`CycleBreakdown::verify`], a cross-crate property test,
//! and the `bench_check` artefact validator.

use crate::Cycle;
use sortmid_util::table::Table;
use std::fmt;
use std::ops::{Add, AddAssign};

/// Where one node's cycles went, category by category.
///
/// # Examples
///
/// ```
/// use sortmid_observe::CycleBreakdown;
///
/// let b = CycleBreakdown { setup: 25, busy: 50, bus_stall: 10, starved: 10, idle: 5 };
/// assert_eq!(b.total(), 100);
/// assert!(b.verify(100).is_ok());
/// assert!(b.verify(99).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleBreakdown {
    /// Cycles padding the per-triangle setup floor.
    pub setup: u64,
    /// Cycles the engine spent scanning fragments.
    pub busy: u64,
    /// Cycles the engine stalled on the saturated texture bus.
    pub bus_stall: u64,
    /// Cycles the engine starved waiting for a triangle from the FIFO.
    pub starved: u64,
    /// Cycles after the engine finished while line fills drained.
    pub idle: u64,
}

/// The category names, in the order the compact JSON arrays use.
pub const CATEGORY_NAMES: [&str; 5] = ["setup", "busy", "bus_stall", "starved", "idle"];

impl CycleBreakdown {
    /// Sum over all categories — equal to the node's finish cycle when
    /// accounting is intact.
    pub fn total(&self) -> u64 {
        self.setup + self.busy + self.bus_stall + self.starved + self.idle
    }

    /// Checks the accounting identity against the node's finish cycle.
    ///
    /// # Errors
    ///
    /// Returns [`CycleIdentityError`] when the categories do not sum to
    /// `finish`.
    pub fn verify(&self, finish: Cycle) -> Result<(), CycleIdentityError> {
        if self.total() == finish {
            Ok(())
        } else {
            Err(CycleIdentityError {
                breakdown: *self,
                finish,
            })
        }
    }

    /// The categories as `[setup, busy, bus_stall, starved, idle]`, in
    /// [`CATEGORY_NAMES`] order.
    pub fn as_array(&self) -> [u64; 5] {
        [self.setup, self.busy, self.bus_stall, self.starved, self.idle]
    }

    /// Each category as a percentage of `finish` (all zeros when `finish`
    /// is zero).
    pub fn percentages(&self, finish: Cycle) -> [f64; 5] {
        if finish == 0 {
            return [0.0; 5];
        }
        self.as_array().map(|c| c as f64 * 100.0 / finish as f64)
    }

    /// The signed per-category change from `baseline` to `self` — the
    /// five-way attribution of a cycle delta. The deltas obey the same
    /// accounting identity as the breakdowns themselves:
    /// `delta.total() == self.total() - baseline.total()` exactly, and
    /// `baseline.delta(baseline)` is all-zero.
    pub fn delta(&self, baseline: &CycleBreakdown) -> BreakdownDelta {
        let d = |cur: u64, base: u64| {
            i64::try_from(cur as i128 - base as i128)
                .expect("cycle counts fit well inside i64")
        };
        BreakdownDelta {
            setup: d(self.setup, baseline.setup),
            busy: d(self.busy, baseline.busy),
            bus_stall: d(self.bus_stall, baseline.bus_stall),
            starved: d(self.starved, baseline.starved),
            idle: d(self.idle, baseline.idle),
        }
    }
}

/// The signed change between two [`CycleBreakdown`]s, category by
/// category (see [`CycleBreakdown::delta`]).
///
/// # Examples
///
/// ```
/// use sortmid_observe::CycleBreakdown;
///
/// let base = CycleBreakdown { setup: 25, busy: 50, bus_stall: 10, starved: 10, idle: 5 };
/// let cur = CycleBreakdown { setup: 25, busy: 50, bus_stall: 40, starved: 5, idle: 5 };
/// let d = cur.delta(&base);
/// assert_eq!(d.total(), 25);
/// assert_eq!(d.dominant(), Some(("bus_stall", 30)));
/// assert!(base.delta(&base).is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BreakdownDelta {
    /// Change in setup-floor padding cycles.
    pub setup: i64,
    /// Change in busy (fragment-scanning) cycles.
    pub busy: i64,
    /// Change in bus-stall cycles.
    pub bus_stall: i64,
    /// Change in FIFO-starved cycles.
    pub starved: i64,
    /// Change in fill-tail idle cycles.
    pub idle: i64,
}

impl BreakdownDelta {
    /// Sum over all categories — the net cycle change.
    pub fn total(&self) -> i64 {
        self.setup + self.busy + self.bus_stall + self.starved + self.idle
    }

    /// The categories as `[setup, busy, bus_stall, starved, idle]`, in
    /// [`CATEGORY_NAMES`] order.
    pub fn as_array(&self) -> [i64; 5] {
        [self.setup, self.busy, self.bus_stall, self.starved, self.idle]
    }

    /// True when every category is unchanged.
    pub fn is_zero(&self) -> bool {
        self.as_array() == [0; 5]
    }

    /// The category with the largest absolute change, with its delta
    /// (`None` when all-zero; ties resolve to the earliest category).
    pub fn dominant(&self) -> Option<(&'static str, i64)> {
        let arr = self.as_array();
        // max_by_key keeps the last maximum; reversing makes ties resolve
        // to the earliest category instead.
        let (idx, &delta) = arr
            .iter()
            .enumerate()
            .rev()
            .max_by_key(|(_, d)| d.unsigned_abs())?;
        (delta != 0).then_some((CATEGORY_NAMES[idx], delta))
    }
}

impl Add for BreakdownDelta {
    type Output = BreakdownDelta;

    fn add(self, rhs: BreakdownDelta) -> BreakdownDelta {
        BreakdownDelta {
            setup: self.setup + rhs.setup,
            busy: self.busy + rhs.busy,
            bus_stall: self.bus_stall + rhs.bus_stall,
            starved: self.starved + rhs.starved,
            idle: self.idle + rhs.idle,
        }
    }
}

impl AddAssign for BreakdownDelta {
    fn add_assign(&mut self, rhs: BreakdownDelta) {
        *self = *self + rhs;
    }
}

impl fmt::Display for BreakdownDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "setup {:+} / busy {:+} / bus-stall {:+} / starved {:+} / idle {:+}",
            self.setup, self.busy, self.bus_stall, self.starved, self.idle
        )
    }
}

impl Add for CycleBreakdown {
    type Output = CycleBreakdown;

    fn add(self, rhs: CycleBreakdown) -> CycleBreakdown {
        CycleBreakdown {
            setup: self.setup + rhs.setup,
            busy: self.busy + rhs.busy,
            bus_stall: self.bus_stall + rhs.bus_stall,
            starved: self.starved + rhs.starved,
            idle: self.idle + rhs.idle,
        }
    }
}

impl AddAssign for CycleBreakdown {
    fn add_assign(&mut self, rhs: CycleBreakdown) {
        *self = *self + rhs;
    }
}

impl fmt::Display for CycleBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "setup {} / busy {} / bus-stall {} / starved {} / idle {}",
            self.setup, self.busy, self.bus_stall, self.starved, self.idle
        )
    }
}

/// A broken cycle identity: the categories do not sum to the finish time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleIdentityError {
    /// The offending breakdown.
    pub breakdown: CycleBreakdown,
    /// The finish cycle it should have summed to.
    pub finish: Cycle,
}

impl fmt::Display for CycleIdentityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle identity broken: {} sums to {}, finish is {}",
            self.breakdown,
            self.breakdown.total(),
            self.finish
        )
    }
}

impl std::error::Error for CycleIdentityError {}

/// Renders labelled breakdowns as a table: absolute cycles plus the
/// percentage of each node's finish time, one row per entry.
///
/// # Examples
///
/// ```
/// use sortmid_observe::{breakdown_table, CycleBreakdown};
///
/// let b = CycleBreakdown { setup: 25, busy: 50, bus_stall: 0, starved: 20, idle: 5 };
/// let t = breakdown_table(&[("node 0".to_string(), b, 100)]);
/// assert!(t.to_ascii().contains("starved"));
/// assert!(t.to_csv().contains("20.0"));
/// ```
pub fn breakdown_table(rows: &[(String, CycleBreakdown, Cycle)]) -> Table {
    let mut t = Table::new(&[
        "node", "finish", "setup", "busy", "bus_stall", "starved", "idle", "setup%", "busy%",
        "stall%", "starved%", "idle%",
    ]);
    for (label, b, finish) in rows {
        let pct = b.percentages(*finish);
        let mut row = vec![label.clone(), finish.to_string()];
        row.extend(b.as_array().iter().map(u64::to_string));
        row.extend(pct.iter().map(|p| format!("{p:.1}")));
        t.row_owned(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_and_verifies() {
        let b = CycleBreakdown { setup: 1, busy: 2, bus_stall: 3, starved: 4, idle: 5 };
        assert_eq!(b.total(), 15);
        assert!(b.verify(15).is_ok());
        let err = b.verify(16).unwrap_err();
        assert!(err.to_string().contains("sums to 15"));
    }

    #[test]
    fn addition_is_fieldwise() {
        let a = CycleBreakdown { setup: 1, busy: 2, bus_stall: 3, starved: 4, idle: 5 };
        let mut b = a;
        b += a;
        assert_eq!(b.total(), 30);
        assert_eq!(b.bus_stall, 6);
    }

    #[test]
    fn percentages_split_finish() {
        let b = CycleBreakdown { setup: 25, busy: 25, bus_stall: 25, starved: 25, idle: 0 };
        let pct = b.percentages(100);
        assert_eq!(pct, [25.0, 25.0, 25.0, 25.0, 0.0]);
        assert_eq!(b.percentages(0), [0.0; 5]);
    }

    #[test]
    fn delta_of_a_breakdown_with_itself_is_zero() {
        let b = CycleBreakdown { setup: 7, busy: 11, bus_stall: 13, starved: 17, idle: 19 };
        let d = b.delta(&b);
        assert!(d.is_zero());
        assert_eq!(d.total(), 0);
        assert_eq!(d.dominant(), None);
    }

    #[test]
    fn delta_total_matches_breakdown_total_difference() {
        let base = CycleBreakdown { setup: 10, busy: 100, bus_stall: 5, starved: 0, idle: 1 };
        let cur = CycleBreakdown { setup: 12, busy: 90, bus_stall: 45, starved: 3, idle: 0 };
        let d = cur.delta(&base);
        assert_eq!(d.total(), cur.total() as i64 - base.total() as i64);
        assert_eq!(d.as_array(), [2, -10, 40, 3, -1]);
        assert_eq!(d.dominant(), Some(("bus_stall", 40)));
        // Antisymmetry: reversing the diff negates every category.
        let r = base.delta(&cur);
        assert_eq!(r.as_array().map(|v| -v), d.as_array());
    }

    #[test]
    fn delta_addition_composes_fieldwise() {
        let a = CycleBreakdown { setup: 1, busy: 2, bus_stall: 3, starved: 4, idle: 5 };
        let b = CycleBreakdown { setup: 5, busy: 4, bus_stall: 3, starved: 2, idle: 1 };
        let c = CycleBreakdown { setup: 9, busy: 9, bus_stall: 9, starved: 9, idle: 9 };
        // (c - b) + (b - a) == c - a, node-aggregation's associativity.
        let mut d = c.delta(&b);
        d += b.delta(&a);
        assert_eq!(d, c.delta(&a));
        assert!(d.to_string().contains("+8"));
    }

    #[test]
    fn delta_handles_extreme_magnitudes_without_overflow() {
        let zero = CycleBreakdown::default();
        let huge = CycleBreakdown { setup: 0, busy: 1 << 62, bus_stall: 0, starved: 0, idle: 0 };
        assert_eq!(huge.delta(&zero).busy, 1 << 62);
        assert_eq!(zero.delta(&huge).busy, -(1i64 << 62));
    }

    #[test]
    fn dominant_tie_resolves_to_the_earliest_category() {
        let d = BreakdownDelta { setup: -5, busy: 0, bus_stall: 5, starved: 0, idle: 0 };
        assert_eq!(d.dominant(), Some(("setup", -5)));
    }

    #[test]
    fn table_has_one_row_per_node() {
        let b = CycleBreakdown { setup: 10, busy: 80, bus_stall: 0, starved: 10, idle: 0 };
        let t = breakdown_table(&[
            ("n0".to_string(), b, 100),
            ("n1".to_string(), b, 100),
        ]);
        assert_eq!(t.len(), 2);
    }
}
