//! Hit/miss accounting and texel-to-fragment arithmetic.

use std::fmt;

/// Accumulated access statistics of a cache model.
///
/// # Examples
///
/// ```
/// use sortmid_cache::CacheStats;
///
/// let mut s = CacheStats::new();
/// s.record(true);
/// s.record(false);
/// assert_eq!(s.accesses(), 2);
/// assert_eq!(s.miss_rate(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    accesses: u64,
    misses: u64,
}

impl CacheStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds statistics from raw counts (used when differencing snapshots
    /// across simulation frames).
    ///
    /// # Panics
    ///
    /// Panics if `misses > accesses`.
    pub fn from_counts(accesses: u64, misses: u64) -> Self {
        assert!(misses <= accesses, "more misses than accesses");
        CacheStats { accesses, misses }
    }

    /// The accesses/misses accumulated since an earlier snapshot of the
    /// same accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not actually an earlier snapshot (its counts
    /// exceed this one's).
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        assert!(
            earlier.accesses <= self.accesses && earlier.misses <= self.misses,
            "snapshot is not earlier"
        );
        CacheStats {
            accesses: self.accesses - earlier.accesses,
            misses: self.misses - earlier.misses,
        }
    }

    /// Records one access (`hit == true` for a hit).
    #[inline]
    pub fn record(&mut self, hit: bool) {
        self.accesses += 1;
        if !hit {
            self.misses += 1;
        }
    }

    /// Records `n` hits at once. The accumulator is a pair of order-free
    /// counters, so bulk recording is indistinguishable from `n` calls to
    /// `record(true)` — the batched probe paths rely on that to stay
    /// byte-identical to the scalar loop.
    #[inline]
    pub fn record_hits(&mut self, n: u64) {
        self.accesses += n;
    }

    /// Records `n` misses at once (see [`record_hits`](Self::record_hits)).
    #[inline]
    pub fn record_misses(&mut self, n: u64) {
        self.accesses += n;
        self.misses += n;
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses (= lines fetched for a single-level cache).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.accesses - self.misses
    }

    /// Miss rate in `[0, 1]`; 0 when no access happened.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Texels fetched from memory, assuming `texels_per_line` texels per
    /// fetched line (16 for the paper's 64-byte lines of 4-byte texels).
    pub fn texels_fetched(&self, texels_per_line: u32) -> u64 {
        self.misses * texels_per_line as u64
    }

    /// The paper's **texel to fragment ratio**: texels fetched from external
    /// memory divided by fragments drawn.
    ///
    /// Returns 0 when no fragment was drawn.
    pub fn texel_to_fragment(&self, texels_per_line: u32, fragments: u64) -> f64 {
        if fragments == 0 {
            0.0
        } else {
            self.texels_fetched(texels_per_line) as f64 / fragments as f64
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.misses += other.misses;
    }

    /// Zeroes the accumulator.
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses ({:.2}%)",
            self.accesses,
            self.misses,
            self.miss_rate() * 100.0
        )
    }
}

/// Per-kind miss breakdown produced by
/// [`ClassifyingCache`](crate::ClassifyingCache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MissBreakdown {
    /// First-ever access to the line (would miss in any cache).
    pub compulsory: u64,
    /// Misses a fully-associative LRU cache of equal capacity would also
    /// take.
    pub capacity: u64,
    /// Misses caused only by limited associativity.
    pub conflict: u64,
}

impl MissBreakdown {
    /// Total classified misses.
    pub fn total(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }

    /// Checks the exact-sum invariant `compulsory + capacity + conflict ==
    /// misses` against a cache's miss counter. Every miss the classifier
    /// sees falls in exactly one class, so any difference means the
    /// decomposition silently dropped or double-counted misses — the
    /// three-C analogue of `sortmid-observe`'s `CycleBreakdown::verify`
    /// cycle identity, and enforced the same way by property tests and
    /// `bench_check`.
    ///
    /// # Errors
    ///
    /// Returns the mismatching totals when the identity does not hold.
    pub fn verify(&self, misses: u64) -> Result<(), MissIdentityError> {
        if self.total() == misses {
            Ok(())
        } else {
            Err(MissIdentityError {
                breakdown: *self,
                misses,
            })
        }
    }
}

/// Violation of the three-C exact-sum identity: the classified misses do
/// not add up to the cache's miss counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissIdentityError {
    /// The failing decomposition.
    pub breakdown: MissBreakdown,
    /// The miss total it should have summed to.
    pub misses: u64,
}

impl fmt::Display for MissIdentityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "miss classes ({}) sum to {}, cache counted {} misses",
            self.breakdown,
            self.breakdown.total(),
            self.misses
        )
    }
}

impl std::error::Error for MissIdentityError {}

impl fmt::Display for MissBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "compulsory={} capacity={} conflict={}",
            self.compulsory, self.capacity, self.conflict
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_rates() {
        let mut s = CacheStats::new();
        for hit in [true, true, false, true] {
            s.record(hit);
        }
        assert_eq!(s.accesses(), 4);
        assert_eq!(s.hits(), 3);
        assert_eq!(s.misses(), 1);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_rates_are_zero() {
        let s = CacheStats::new();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.texel_to_fragment(16, 0), 0.0);
    }

    #[test]
    fn texel_to_fragment_matches_paper_definition() {
        let mut s = CacheStats::new();
        // 10 fragments x 8 accesses, 5 misses.
        for i in 0..80 {
            s.record(i >= 5);
        }
        // 5 lines x 16 texels / 10 fragments = 8 texels per fragment.
        assert!((s.texel_to_fragment(16, 10) - 8.0).abs() < 1e-12);
        assert_eq!(s.texels_fetched(16), 80);
    }

    #[test]
    fn merge_and_reset() {
        let mut a = CacheStats::new();
        a.record(false);
        let mut b = CacheStats::new();
        b.record(true);
        b.record(false);
        a.merge(&b);
        assert_eq!(a.accesses(), 3);
        assert_eq!(a.misses(), 2);
        a.reset();
        assert_eq!(a.accesses(), 0);
    }

    #[test]
    fn from_counts_and_delta() {
        let early = CacheStats::from_counts(10, 4);
        let late = CacheStats::from_counts(25, 9);
        let d = late.delta_since(&early);
        assert_eq!(d.accesses(), 15);
        assert_eq!(d.misses(), 5);
        assert_eq!(late.delta_since(&late).accesses(), 0);
    }

    #[test]
    #[should_panic(expected = "not earlier")]
    fn delta_since_rejects_later_snapshot() {
        CacheStats::from_counts(1, 0).delta_since(&CacheStats::from_counts(5, 0));
    }

    #[test]
    #[should_panic(expected = "more misses")]
    fn from_counts_rejects_impossible() {
        CacheStats::from_counts(1, 2);
    }

    #[test]
    fn breakdown_totals() {
        let b = MissBreakdown {
            compulsory: 2,
            capacity: 3,
            conflict: 4,
        };
        assert_eq!(b.total(), 9);
        assert_eq!(b.to_string(), "compulsory=2 capacity=3 conflict=4");
    }

    #[test]
    fn verify_enforces_the_exact_sum_identity() {
        let b = MissBreakdown {
            compulsory: 2,
            capacity: 3,
            conflict: 4,
        };
        assert!(b.verify(9).is_ok());
        let err = b.verify(10).unwrap_err();
        assert_eq!(err.misses, 10);
        assert_eq!(err.breakdown, b);
        let msg = err.to_string();
        assert!(msg.contains("sum to 9") && msg.contains("10 misses"), "{msg}");
    }
}
