//! Trilinear filtering footprints: the 8 texels a fragment reads.

use crate::layout::{TexelAddr, TextureId, TextureRegistry};
use crate::TEXELS_PER_FRAGMENT;

/// Computes the 8-texel trilinear footprint of fragments.
///
/// The paper's engine performs trilinear mip-mapped filtering: each fragment
/// reads a 2×2 bilinear neighbourhood on each of the two mip levels
/// bracketing its LOD λ (`floor(λ)` and `floor(λ)+1`, clamped to the chain).
/// At the top of the chain the same level is read twice — the engine still
/// issues 8 reads, which is what the cache's 8-accesses-per-cycle port
/// sustains.
///
/// # Examples
///
/// ```
/// use sortmid_texture::{TextureDesc, TextureRegistry, TrilinearSampler};
///
/// let mut reg = TextureRegistry::new();
/// let id = reg.register(TextureDesc::new(64, 64)?)?;
/// let sampler = TrilinearSampler::new(&reg);
/// let addrs = sampler.footprint(id, 10.0, 20.0, 0.0);
/// assert_eq!(addrs.len(), 8);
/// # Ok::<(), sortmid_texture::TextureError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TrilinearSampler<'a> {
    registry: &'a TextureRegistry,
}

impl<'a> TrilinearSampler<'a> {
    /// Creates a sampler over `registry`.
    pub fn new(registry: &'a TextureRegistry) -> Self {
        TrilinearSampler { registry }
    }

    /// The registry this sampler resolves addresses against.
    pub fn registry(&self) -> &'a TextureRegistry {
        self.registry
    }

    /// The two mip levels bracketing a continuous LOD for texture `id`.
    pub fn mip_pair(&self, id: TextureId, lod: f32) -> (u32, u32) {
        let max = self.registry.mip_levels(id) - 1;
        let l0 = (lod.max(0.0).floor() as u32).min(max);
        (l0, (l0 + 1).min(max))
    }

    /// The 8 texel addresses a fragment at base-level coordinate `(u, v)`
    /// (texels) with LOD `lod` reads.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not registered.
    pub fn footprint(&self, id: TextureId, u: f32, v: f32, lod: f32) -> [TexelAddr; TEXELS_PER_FRAGMENT] {
        let (l0, l1) = self.mip_pair(id, lod);
        let mut out = [TexelAddr::from_index(0); TEXELS_PER_FRAGMENT];
        self.bilinear_quad(id, l0, u, v, &mut out[0..4]);
        self.bilinear_quad(id, l1, u, v, &mut out[4..8]);
        out
    }

    /// The 2×2 bilinear neighbourhood on one level; `(u, v)` are base-level
    /// texel coordinates, scaled down to the level.
    fn bilinear_quad(&self, id: TextureId, level: u32, u: f32, v: f32, out: &mut [TexelAddr]) {
        debug_assert_eq!(out.len(), 4);
        let scale = 1.0 / (1u32 << level) as f32;
        // Sample point in this level's texel space; the -0.5 centres the
        // 2x2 footprint on the sample as OpenGL does.
        let lu = u * scale - 0.5;
        let lv = v * scale - 0.5;
        let i0 = lu.floor() as i32;
        let j0 = lv.floor() as i32;
        out[0] = self.registry.texel_addr(id, level, i0, j0);
        out[1] = self.registry.texel_addr(id, level, i0 + 1, j0);
        out[2] = self.registry.texel_addr(id, level, i0, j0 + 1);
        out[3] = self.registry.texel_addr(id, level, i0 + 1, j0 + 1);
    }
}

/// Converts a fragment's 8-texel trilinear footprint into its 8 cache-line
/// ids, in probe order.
///
/// This is the struct-of-arrays pivot the batched fragment core builds on:
/// the machine only ever probes the cache at *line* granularity, so
/// flattening footprints into contiguous line-id lanes up front removes the
/// per-probe `TexelAddr` walk from the hot loop. Each 2×2 bilinear quad
/// usually sits inside one or two 4×4 blocks, so lanes carry runs of equal
/// line ids — exactly what the batched probes collapse.
#[inline]
pub fn footprint_lines(texels: &[TexelAddr; TEXELS_PER_FRAGMENT]) -> [u32; TEXELS_PER_FRAGMENT] {
    let mut out = [0u32; TEXELS_PER_FRAGMENT];
    for (slot, t) in out.iter_mut().zip(texels) {
        *slot = t.line();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TextureDesc;
    use std::collections::HashSet;

    fn setup(w: u32, h: u32) -> (TextureRegistry, TextureId) {
        let mut reg = TextureRegistry::new();
        let id = reg.register(TextureDesc::new(w, h).unwrap()).unwrap();
        (reg, id)
    }

    #[test]
    fn mip_pair_brackets_lod() {
        let (reg, id) = setup(64, 64); // 7 levels: 0..=6
        let s = TrilinearSampler::new(&reg);
        assert_eq!(s.mip_pair(id, 0.0), (0, 1));
        assert_eq!(s.mip_pair(id, 2.7), (2, 3));
        assert_eq!(s.mip_pair(id, 6.0), (6, 6));
        assert_eq!(s.mip_pair(id, 99.0), (6, 6));
        assert_eq!(s.mip_pair(id, -3.0), (0, 1));
    }

    #[test]
    fn footprint_is_eight_addrs_two_levels() {
        let (reg, id) = setup(64, 64);
        let s = TrilinearSampler::new(&reg);
        let fp = s.footprint(id, 32.0, 32.0, 1.5);
        assert_eq!(fp.len(), 8);
        // First four on level 1, last four on level 2: disjoint ranges.
        let l1: HashSet<_> = fp[0..4].iter().collect();
        let l2: HashSet<_> = fp[4..8].iter().collect();
        assert!(l1.is_disjoint(&l2));
    }

    #[test]
    fn interior_footprint_covers_2x2() {
        let (reg, id) = setup(64, 64);
        let s = TrilinearSampler::new(&reg);
        let fp = s.footprint(id, 10.5, 20.5, 0.0);
        // At a texel center +0.5, the quad is texels (10,20)..(11,21).
        let expect: HashSet<_> = [(10, 20), (11, 20), (10, 21), (11, 21)]
            .iter()
            .map(|&(u, v)| reg.texel_addr(id, 0, u, v))
            .collect();
        let got: HashSet<_> = fp[0..4].iter().copied().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn adjacent_fragments_share_texels() {
        // The essence of texture-cache locality: neighbouring pixels at
        // ~1 texel/pixel share most of their footprint.
        let (reg, id) = setup(64, 64);
        let s = TrilinearSampler::new(&reg);
        let a: HashSet<_> = s.footprint(id, 10.5, 20.5, 0.0).into_iter().collect();
        let b: HashSet<_> = s.footprint(id, 11.5, 20.5, 0.0).into_iter().collect();
        let shared = a.intersection(&b).count();
        assert!(shared >= 3, "expected sharing, got {shared}");
    }

    #[test]
    fn top_of_chain_duplicates_level() {
        let (reg, id) = setup(4, 4); // 3 levels: 0,1,2
        let s = TrilinearSampler::new(&reg);
        let fp = s.footprint(id, 1.0, 1.0, 10.0);
        // Both halves sample level 2 (1x1): all eight addresses equal.
        let uniq: HashSet<_> = fp.iter().collect();
        assert_eq!(uniq.len(), 1);
    }

    #[test]
    fn footprints_stay_inside_the_registry() {
        use sortmid_devharness::prop::{check, Config};
        use sortmid_devharness::prop_assert;
        let (reg, id) = setup(128, 32);
        let total = reg.total_texels() as u32;
        let s = TrilinearSampler::new(&reg);
        check(
            "footprints_stay_inside_the_registry",
            &Config::default(),
            |g| {
                (
                    g.f32_in(-500.0, 500.0),
                    g.f32_in(-500.0, 500.0),
                    g.f32_in(-2.0, 12.0),
                )
            },
            |&(u, v, lod)| {
                for addr in s.footprint(id, u, v, lod) {
                    prop_assert!(addr.index() < total);
                }
                Ok(())
            },
        );
    }

    #[test]
    fn footprint_lines_matches_per_texel_line() {
        let (reg, id) = setup(64, 64);
        let s = TrilinearSampler::new(&reg);
        let fp = s.footprint(id, 13.7, 41.2, 0.8);
        let lines = footprint_lines(&fp);
        for (i, t) in fp.iter().enumerate() {
            assert_eq!(lines[i], t.line());
        }
    }

    #[test]
    fn footprint_wraps_at_edges() {
        let (reg, id) = setup(16, 16);
        let s = TrilinearSampler::new(&reg);
        // Sampling at u=0.0 puts i0 at -1, which must wrap to 15.
        let fp = s.footprint(id, 0.0, 8.5, 0.0);
        let wrapped = reg.texel_addr(id, 0, 15, 8);
        assert!(fp[0..4].contains(&wrapped));
    }
}
