//! Shared setup for the `sortmid` Criterion benches.
//!
//! Each bench target regenerates (a representative configuration of) one
//! table or figure of the paper; the full sweeps live in
//! `sortmid-experiments`. Benches run scenes at a small scale so
//! `cargo bench` finishes in minutes on one core — the *relative* numbers
//! (which distribution wins, how much a small buffer costs) are the same
//! shapes the paper reports.

use sortmid::{CacheKind, Distribution, Machine, MachineConfig, RunReport};
use sortmid_observe::Provenance;
use sortmid_raster::FragmentStream;
use sortmid_scene::{Benchmark, Scene, SceneBuilder};

/// The scale benches run scenes at.
pub const BENCH_SCALE: f64 = 0.12;

/// Builds a benchmark scene at [`BENCH_SCALE`].
pub fn scene(benchmark: Benchmark) -> Scene {
    SceneBuilder::benchmark(benchmark).scale(BENCH_SCALE).build()
}

/// Builds and rasterizes a benchmark scene at [`BENCH_SCALE`].
pub fn stream(benchmark: Benchmark) -> FragmentStream {
    scene(benchmark).rasterize()
}

/// The provenance block every bench artefact embeds: the benchmark
/// scene's RNG seed plus the hash of the machine-config grid the
/// artefact measures (see `sortmid::grid_hash`). The differ and
/// `bench_check` refuse to compare artefacts whose blocks disagree on
/// schema, seed or grid.
pub fn run_provenance(benchmark: Benchmark, configs: &[MachineConfig]) -> Provenance {
    Provenance::collect(
        SceneBuilder::benchmark(benchmark).config().seed,
        sortmid::grid_hash(configs),
    )
}

/// Runs one machine configuration over a stream.
pub fn run_machine(
    stream: &FragmentStream,
    procs: u32,
    dist: Distribution,
    cache: CacheKind,
    bus_ratio: Option<f64>,
    buffer: usize,
) -> RunReport {
    let mut b = MachineConfig::builder();
    b.processors(procs)
        .distribution(dist)
        .cache(cache)
        .triangle_buffer(buffer);
    match bus_ratio {
        Some(r) => b.bus_ratio(r),
        None => b.infinite_bus(),
    };
    Machine::new(b.build().expect("valid bench config")).run(stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_runnable_setups() {
        let s = stream(Benchmark::Quake);
        assert!(s.fragment_count() > 0);
        let r = run_machine(&s, 4, Distribution::block(16), CacheKind::Perfect, Some(1.0), 100);
        assert!(r.total_cycles() > 0);
    }
}
